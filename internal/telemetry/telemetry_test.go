package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every Recorder entry point on a nil receiver
// and a nil Collector — the telemetry-off fast path must be inert.
func TestNilSafety(t *testing.T) {
	var c *Collector
	r := c.Recorder(0)
	if r != nil {
		t.Fatalf("nil collector handed out a recorder")
	}
	tok := r.Begin()
	r.EndKernel(KernelNewview, tok)
	ct := r.BeginCollective()
	r.EndCollective(0, ct)
	r.Inc(CounterIterations, 1)
	r.SetPool(4, 10, 40)
	r.SetKernelPerf(1, 2, 3, 4)
	if r.ComputeNS() != 0 || r.CollectiveNS() != 0 {
		t.Fatalf("nil recorder accumulated time")
	}
	if rep := c.Finalize(time.Second, 1, nil, nil, nil); rep != nil {
		t.Fatalf("nil collector produced a report")
	}
}

// TestSpansAndReport records spans on two ranks and checks the derived
// metrics of the report.
func TestSpansAndReport(t *testing.T) {
	var trace bytes.Buffer
	c := NewCollector(2, 3, &trace)

	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := c.Recorder(rank)
			for i := 0; i < 3; i++ {
				tok := r.Begin()
				time.Sleep(time.Millisecond)
				r.EndKernel(KernelNewview, tok)
			}
			tok := r.Begin()
			r.EndKernel(KernelEvaluate, tok)
			ct := r.BeginCollective()
			time.Sleep(time.Millisecond)
			r.EndCollective(1, ct)
			r.Inc(CounterIterations, 1)
		}(rank)
	}
	wg.Wait()

	rep := c.Finalize(10*time.Millisecond, 2,
		[]string{"a", "b", "c"}, []int64{0, 4, 0}, []int64{0, 1024, 0})
	if rep.Ranks != 2 {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	if got := rep.Kernels[KernelNewview].Ops; got != 6 {
		t.Fatalf("newview ops = %d, want 6", got)
	}
	if rep.Kernels[KernelNewview].NS <= 0 {
		t.Fatalf("newview time not recorded")
	}
	if rep.ImbalanceRatio < 1 {
		t.Fatalf("imbalance ratio %v < 1", rep.ImbalanceRatio)
	}
	if rep.CommFraction <= 0 || rep.CommFraction >= 1 {
		t.Fatalf("comm fraction %v out of (0,1)", rep.CommFraction)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Name != "b" || rep.Classes[0].Bytes != 1024 {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	if rep.Counters["iterations"] != 1 {
		t.Fatalf("counters = %v", rep.Counters)
	}

	// The trace must be valid JSONL: one "meta" header first, then one
	// event per span.
	lines := strings.Split(strings.TrimSpace(trace.String()), "\n")
	spans, metas := 0, 0
	for i, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		switch ev["ev"] {
		case "span":
			spans++
		case "meta":
			metas++
			if i != 0 {
				t.Fatalf("meta event at line %d, want first", i)
			}
			if ev["ranks"] != float64(2) {
				t.Fatalf("meta ranks = %v, want 2", ev["ranks"])
			}
			if _, ok := ev["start_unix_ns"]; !ok {
				t.Fatalf("meta event missing start_unix_ns: %v", ev)
			}
		default:
			t.Fatalf("unexpected event %v", ev)
		}
	}
	if spans != 2*(3+1+1) || metas != 1 {
		t.Fatalf("trace has %d spans and %d metas, want 10 and 1", spans, metas)
	}

	// Text and JSON renderings must carry the headline metrics.
	text := rep.String()
	for _, want := range []string{"load imbalance", "comm fraction", "newview", "iterations"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("report JSON round-trip: %v", err)
	}
	if back.ImbalanceRatio != rep.ImbalanceRatio {
		t.Fatalf("JSON imbalance %v != %v", back.ImbalanceRatio, rep.ImbalanceRatio)
	}
}

// TestKernelPerfReport checks the once-per-rank kernel performance
// harvest: per-rank fields, the aggregated fast-path share and P-cache
// hit rate, the text rendering, and the "perf" trace events.
func TestKernelPerfReport(t *testing.T) {
	var trace bytes.Buffer
	c := NewCollector(2, 1, &trace)
	c.Recorder(0).SetKernelPerf(30, 10, 8, 2)
	c.Recorder(1).SetKernelPerf(50, 10, 12, 8)
	c.Recorder(0).Inc(CounterTraversalSteps, 40)
	c.Recorder(0).Inc(CounterTraversalStepsSkipped, 25)

	rep := c.Finalize(time.Millisecond, 1, []string{"x"}, []int64{0}, []int64{0})
	if rep.PerRank[0].FastPathOps != 30 || rep.PerRank[0].PCacheHits != 8 {
		t.Fatalf("rank 0 perf fields: %+v", rep.PerRank[0])
	}
	if rep.PerRank[1].GenericOps != 10 || rep.PerRank[1].PCacheMisses != 8 {
		t.Fatalf("rank 1 perf fields: %+v", rep.PerRank[1])
	}
	if want := 80.0 / 100.0; rep.FastPathShare != want {
		t.Fatalf("fast-path share %v, want %v", rep.FastPathShare, want)
	}
	if want := 20.0 / 30.0; rep.PCacheHitRate != want {
		t.Fatalf("P-cache hit rate %v, want %v", rep.PCacheHitRate, want)
	}
	if rep.Counters["traversal-steps"] != 40 || rep.Counters["traversal-steps-skipped"] != 25 {
		t.Fatalf("traversal counters: %v", rep.Counters)
	}

	text := rep.String()
	for _, want := range []string{"fast-path share", "cache hit rate", "traversal-steps-skipped"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report text missing %q:\n%s", want, text)
		}
	}

	perfEvents := 0
	for _, ln := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("trace line %q: %v", ln, err)
		}
		if ev["ev"] == "perf" {
			perfEvents++
			if _, ok := ev["fast_ops"]; !ok {
				t.Fatalf("perf event missing fast_ops: %v", ev)
			}
		}
	}
	if perfEvents != 2 {
		t.Fatalf("trace has %d perf events, want 2", perfEvents)
	}
}

// TestNestedCollectiveRecordedOnce pins the nesting guard: an outer
// collective that internally calls another must account once.
func TestNestedCollectiveRecordedOnce(t *testing.T) {
	c := NewCollector(1, 2, nil)
	r := c.Recorder(0)

	outer := r.BeginCollective()
	inner := r.BeginCollective() // e.g. Allreduce's internal Reduce
	time.Sleep(time.Millisecond)
	r.EndCollective(0, inner)
	r.EndCollective(0, outer)

	rep := c.Finalize(time.Millisecond, 1, []string{"x", "y"}, []int64{1, 0}, []int64{8, 0})
	if ops := rep.PerRank[0].CollectiveOps[0]; ops != 1 {
		t.Fatalf("nested collective recorded %d times, want 1", ops)
	}
	if rep.PerRank[0].CollectiveNS[0] <= 0 {
		t.Fatalf("outer collective span lost")
	}
}
