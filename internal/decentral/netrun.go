package decentral

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/distrib"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/search"
)

// RunOnComm executes ONE rank of a de-centralized inference over an
// existing communicator — in practice the TCP transport of
// internal/mpinet, where every rank is a separate OS process. All ranks
// of the world must call it with the same dataset and configuration;
// cfg.Ranks is ignored in favor of c.Size(). cfg.Telemetry, if set,
// describes this process alone: its rank-0 recorder instruments the
// local engine regardless of c.Rank().
//
// The epilogue proves over the wire what the in-process Run checks in
// shared memory: every replica's (lnL bits, Newick) must match rank 0's
// exactly (§III-B). The returned RunStats is bit-identical on every
// rank — Comm is rank 0's meter snapshot, frozen *before* the epilogue
// traffic and then broadcast, so the Table-I per-class byte accounting
// any process reports equals the in-process run of the same
// configuration.
//
// A transport-level peer failure (heartbeat timeout, connection loss)
// is returned as an error wrapping *mpinet.PeerDownError rather than a
// panic; fault.RunNet unwraps it to drive survivor recovery.
func RunOnComm(c *mpi.Comm, d *msa.Dataset, cfg RunConfig) (res *search.Result, stats *RunStats, err error) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		ce, ok := p.(*mpi.CommError)
		if !ok {
			panic(p)
		}
		res, stats = nil, nil
		err = fmt.Errorf("decentral: rank %d: %w", c.Rank(), ce)
	}()

	counts := make([]int, d.NPartitions())
	for i, p := range d.Parts {
		counts[i] = p.NPatterns()
	}
	assign, err := distrib.Compute(cfg.Strategy, counts, c.Size())
	if err != nil {
		return nil, nil, err
	}

	start := time.Now()
	res, cols, clv, err := runRank(c, d, assign, cfg, cfg.Telemetry.Recorder(0))
	if err != nil {
		// A local failure. The caller closes the transport, which the
		// peers observe as peer loss instead of hanging in a collective.
		return nil, nil, fmt.Errorf("decentral: rank %d: %w", c.Rank(), err)
	}
	wall := time.Since(start)

	// Freeze the Table-I accounting before any epilogue traffic.
	frozen := c.Meter().Snapshot()

	// §III-B replica-consistency check, now across real processes: byte
	// equality of (lnL bits | Newick) against rank 0, with an OpMax
	// reduction so every rank learns about a divergence anywhere.
	mine := binary.LittleEndian.AppendUint64(nil, math.Float64bits(res.LnL))
	mine = append(mine, res.Tree.Newick()...)
	ref := c.BcastBytes(0, mine, mpi.ClassControl)
	diverged := 0.0
	if !bytes.Equal(ref, mine) {
		diverged = 1
	}
	if flag := c.Allreduce([]float64{diverged}, mpi.OpMax, mpi.ClassControl); flag[0] != 0 {
		if diverged != 0 {
			return nil, nil, fmt.Errorf("decentral: replica divergence: rank %d lnL %v differs from rank 0", c.Rank(), res.LnL)
		}
		return nil, nil, fmt.Errorf("decentral: replica divergence detected on a peer of rank %d", c.Rank())
	}

	// Aggregate kernel-side stats, then broadcast rank 0's frozen meter
	// so all ranks return identical accounting.
	agg := c.Allreduce([]float64{float64(cols), clv}, mpi.OpSum, mpi.ClassControl)
	maxCols := c.Allreduce([]float64{float64(cols)}, mpi.OpMax, mpi.ClassControl)
	var meterJSON []byte
	if c.Rank() == 0 {
		if meterJSON, err = json.Marshal(frozen); err != nil {
			return nil, nil, err
		}
	}
	meterJSON = c.BcastBytes(0, meterJSON, mpi.ClassControl)
	var comm mpi.Snapshot
	if err := json.Unmarshal(meterJSON, &comm); err != nil {
		return nil, nil, fmt.Errorf("decentral: decoding rank 0 meter: %w", err)
	}

	stats = &RunStats{
		Comm:           comm,
		Wall:           wall,
		Ranks:          c.Size(),
		MaxRankColumns: int64(maxCols[0]),
		TotalColumns:   int64(agg[0]),
		CLVBytesTotal:  agg[1],
	}
	return res, stats, nil
}
