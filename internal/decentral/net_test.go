package decentral

import (
	"math"
	"net"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// reserveLoopbackAddr picks a free loopback port for a rendezvous.
func reserveLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunOnCommMatchesInProcess is the §III-B property across a real
// wire: the same inference run as one OS process per rank over TCP
// must produce the bit-identical tree, likelihood, and per-CommClass
// metered byte counts as the in-process goroutine world. (The ranks
// here are goroutines for test cheapness, but each owns a full mpinet
// TCP endpoint — every collective crosses loopback sockets.)
func TestRunOnCommMatchesInProcess(t *testing.T) {
	d := makeDataset(t, 8, 2, 60, 3)
	const ranks = 4
	cfg := RunConfig{
		Search: search.Config{Het: model.Gamma, Seed: 7, MaxIterations: 2},
		Ranks:  ranks,
	}
	ref, refStats, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	type out struct {
		res   *search.Result
		stats *RunStats
		err   error
	}
	outs := make([]out, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: 41})
			if err != nil {
				outs[rank].err = err
				return
			}
			c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
			defer c.Close()
			res, stats, err := RunOnComm(c, d, cfg)
			outs[rank] = out{res, stats, err}
		}(r)
	}
	wg.Wait()

	refNewick := ref.Tree.Newick()
	for r, o := range outs {
		if o.err != nil {
			t.Fatalf("rank %d: %v", r, o.err)
		}
		if math.Float64bits(o.res.LnL) != math.Float64bits(ref.LnL) {
			t.Errorf("rank %d: lnL %.17g not bit-identical to in-process %.17g", r, o.res.LnL, ref.LnL)
		}
		if o.res.Tree.Newick() != refNewick {
			t.Errorf("rank %d: topology differs from in-process run", r)
		}
		if o.stats.Comm != refStats.Comm {
			t.Errorf("rank %d: metered traffic differs from in-process run:\nTCP:\n%v\nin-process:\n%v", r, o.stats.Comm, refStats.Comm)
		}
		if o.stats.TotalColumns != refStats.TotalColumns ||
			o.stats.MaxRankColumns != refStats.MaxRankColumns ||
			o.stats.CLVBytesTotal != refStats.CLVBytesTotal {
			t.Errorf("rank %d: kernel stats differ: %+v vs %+v", r, o.stats, refStats)
		}
		if o.stats.Ranks != ranks {
			t.Errorf("rank %d: stats.Ranks = %d", r, o.stats.Ranks)
		}
	}
}
