package decentral

import (
	"math"
	"testing"

	"repro/internal/distrib"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/search"
	"repro/internal/seqgen"
)

func makeDataset(t testing.TB, nTaxa, nParts, geneLen int, seed int64) *msa.Dataset {
	t.Helper()
	res, err := seqgen.Generate(seqgen.PartitionedGenes(nTaxa, nParts, geneLen, seed))
	if err != nil {
		t.Fatal(err)
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunSequentialGamma(t *testing.T) {
	d := makeDataset(t, 8, 2, 60, 1)
	res, stats, err := Run(d, RunConfig{
		Search: search.Config{Het: model.Gamma, Seed: 7, MaxIterations: 2},
		Ranks:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LnL) || math.IsInf(res.LnL, 0) || res.LnL >= 0 {
		t.Fatalf("lnL = %g", res.LnL)
	}
	if err := res.Tree.Check(); err != nil {
		t.Fatal(err)
	}
	if stats.TotalColumns == 0 {
		t.Fatal("no kernel work recorded")
	}
	if len(res.PerPartitionLnL) != 2 {
		t.Fatalf("per-partition lnL: %v", res.PerPartitionLnL)
	}
	if s := res.PerPartitionLnL[0] + res.PerPartitionLnL[1]; math.Abs(s-res.LnL) > 1e-9 {
		t.Fatalf("per-partition sums %g != total %g", s, res.LnL)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	// Across *rank counts*, summation order changes, so results agree to
	// floating-point tolerance (exactly as in real MPI codes) — bitwise
	// identity is guaranteed only across the replicas of a single run,
	// which Run checks internally on every call.
	d := makeDataset(t, 10, 3, 50, 2)
	cfg := search.Config{Het: model.Gamma, Seed: 3, MaxIterations: 2}

	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 5} {
		got, stats, err := Run(d, RunConfig{Search: cfg, Ranks: ranks})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if math.Abs(got.LnL-ref.LnL) > 1e-6*math.Abs(ref.LnL) {
			t.Errorf("ranks=%d: lnL %.12f != sequential %.12f", ranks, got.LnL, ref.LnL)
		}
		if stats.Comm.Bytes[mpi.ClassTraversal] != 0 {
			t.Errorf("ranks=%d: decentral scheme broadcast %d descriptor bytes", ranks, stats.Comm.Bytes[mpi.ClassTraversal])
		}
		if stats.Comm.Bytes[mpi.ClassModelParams] != 0 {
			t.Errorf("ranks=%d: decentral Γ run sent %d model-param bytes", ranks, stats.Comm.Bytes[mpi.ClassModelParams])
		}
	}
}

func TestRunPSR(t *testing.T) {
	d := makeDataset(t, 8, 2, 40, 5)
	cfg := search.Config{Het: model.PSR, Seed: 11, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(d, RunConfig{Search: cfg, Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.LnL-ref.LnL) > 1e-6*math.Abs(ref.LnL) {
		t.Errorf("PSR: lnL %.12f (3 ranks) != %.12f (sequential)", got.LnL, ref.LnL)
	}
}

func TestRunPerPartitionBranches(t *testing.T) {
	d := makeDataset(t, 8, 3, 40, 6)
	cfg := search.Config{Het: model.Gamma, PerPartitionBranches: true, Seed: 13, MaxIterations: 1}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(d, RunConfig{Search: cfg, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.LnL-ref.LnL) > 1e-6*math.Abs(ref.LnL) {
		t.Errorf("-M: lnL differs: %.12f vs %.12f", got.LnL, ref.LnL)
	}
	if ref.Tree.BLClasses != 3 {
		t.Fatalf("BLClasses = %d", ref.Tree.BLClasses)
	}
	// Per-partition branch lengths must actually differ across classes
	// after optimization.
	same := true
	for _, e := range ref.Tree.Edges() {
		if e.Length(0) != e.Length(1) || e.Length(1) != e.Length(2) {
			same = false
			break
		}
	}
	if same {
		t.Error("per-partition branch lengths never diverged")
	}
}

func TestRunMPSStrategy(t *testing.T) {
	d := makeDataset(t, 8, 6, 30, 7)
	cfg := search.Config{Het: model.Gamma, Seed: 17, MaxIterations: 1}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 1, Strategy: distrib.MPS})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(d, RunConfig{Search: cfg, Ranks: 3, Strategy: distrib.MPS})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.LnL-ref.LnL) > 1e-6*math.Abs(ref.LnL) {
		t.Errorf("MPS: lnL differs")
	}
	// Cyclic and MPS must agree on the likelihood too (same data, same
	// algorithm, different layout).
	cyc, _, err := Run(d, RunConfig{Search: cfg, Ranks: 3, Strategy: distrib.Cyclic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cyc.LnL-ref.LnL) > 1e-6*math.Abs(ref.LnL) {
		t.Errorf("cyclic lnL %.9f vs MPS %.9f", cyc.LnL, ref.LnL)
	}
}

func TestSearchImprovesLikelihood(t *testing.T) {
	// The search must improve on the starting tree's likelihood and
	// ideally recover a topology close to the truth.
	res, err := seqgen.Generate(seqgen.Config{
		NTaxa:            9,
		Specs:            []seqgen.Spec{{Name: "g", NSites: 400, Alpha: 1}},
		Seed:             21,
		MeanBranchLength: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		t.Fatal(err)
	}
	// Score the random starting tree (no topology moves, no model opt).
	flat, _, err := Run(d, RunConfig{
		Search: search.Config{Het: model.Gamma, Seed: 5, MaxIterations: 1, SkipTopology: true, ModelOptRounds: 1},
		Ranks:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Run(d, RunConfig{
		Search: search.Config{Het: model.Gamma, Seed: 5, MaxIterations: 8},
		Ranks:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.LnL < flat.LnL {
		t.Fatalf("SPR search made things worse: %f < %f", full.LnL, flat.LnL)
	}
	if full.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestHybridAllreduceMatchesFlat(t *testing.T) {
	// The §V hybrid (hierarchical) Allreduce must produce the same
	// search outcome as the flat Allreduce at the same rank count, up to
	// the floating-point tolerance of the changed association order, and
	// replicas must stay internally bit-consistent (verified inside Run).
	d := makeDataset(t, 9, 2, 50, 8)
	cfg := search.Config{Het: model.Gamma, Seed: 6, MaxIterations: 2}
	flat, _, err := Run(d, RunConfig{Search: cfg, Ranks: 6})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, _, err := Run(d, RunConfig{Search: cfg, Ranks: 6, HybridRanksPerNode: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat.LnL-hybrid.LnL) > 1e-6*math.Abs(flat.LnL) {
		t.Fatalf("hybrid lnL %.9f far from flat %.9f", hybrid.LnL, flat.LnL)
	}
}

func TestThreadedSearchMatchesSerial(t *testing.T) {
	// Intra-rank threading must not move a single bit of the search
	// outcome: unlike changing the rank count (which re-associates the
	// cross-rank Allreduce), the per-block ordered reduction is exactly
	// the serial summation — so the whole search trajectory, final
	// likelihood, and topology are bitwise equal at every thread count.
	// 2×800 sites keep each rank's partition share above one block, so
	// the threaded (multi-block) kernel path actually runs.
	d := makeDataset(t, 10, 2, 800, 9)
	cfg := search.Config{Het: model.Gamma, Seed: 4, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	refNewick := ref.Tree.Newick()
	for _, threads := range []int{2, 4} {
		got, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if math.Float64bits(got.LnL) != math.Float64bits(ref.LnL) {
			t.Errorf("threads=%d: lnL %.17g not bit-identical to serial %.17g", threads, got.LnL, ref.LnL)
		}
		if got.Tree.Newick() != refNewick {
			t.Errorf("threads=%d: topology differs from serial run", threads)
		}
	}
}

func TestThreadedHybridSearch(t *testing.T) {
	// Threads compose with the hierarchical Allreduce: the full §V hybrid
	// configuration (nodes × ranks-per-node × threads) must be bitwise
	// equal to the same rank layout with serial kernels.
	d := makeDataset(t, 9, 2, 600, 10)
	cfg := search.Config{Het: model.PSR, Seed: 8, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 4, HybridRanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(d, RunConfig{Search: cfg, Ranks: 4, HybridRanksPerNode: 2, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.LnL) != math.Float64bits(ref.LnL) {
		t.Errorf("hybrid+threads lnL %.17g not bit-identical to hybrid serial %.17g", got.LnL, ref.LnL)
	}
	if got.Tree.Newick() != ref.Tree.Newick() {
		t.Error("hybrid+threads topology differs from hybrid serial run")
	}
}
