// Package decentral implements the paper's contribution: the
// de-centralized parallelization scheme of ExaML. Every rank executes a
// local, consistent replica of the entire tree-search algorithm on its
// share of the data; ranks communicate *only* through Allreduce at the two
// call sites the paper identifies — the likelihood evaluation and the
// branch-length derivative computation (plus a rare, small Allreduce for
// the PSR rate-category statistics, the "additional MPI calls to handle
// the CAT model"). There is no master, no traversal-descriptor broadcast,
// and no model-parameter broadcast.
package decentral

import (
	"fmt"

	"repro/internal/distrib"
	"repro/internal/enginecore"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/traversal"
)

// EngineConfig selects the model dimensions the engine must provision.
type EngineConfig struct {
	// Het is the rate-heterogeneity model.
	Het model.Heterogeneity
	// Subst constrains the exchangeabilities (see model.SubstModel).
	Subst model.SubstModel
	// PerPartitionBranches mirrors search.Config.PerPartitionBranches.
	PerPartitionBranches bool
	// HybridRanksPerNode, when > 1, routes the two Allreduce call sites
	// through the hierarchical (intra-node first) algorithm — the §V
	// hybrid MPI/PThreads idea. 0 or 1 selects the flat Allreduce.
	HybridRanksPerNode int
	// Threads, when > 1, splits every kernel invocation across an
	// intra-rank worker pool — the shared-memory axis of the §V hybrid
	// scheme. Results are bit-identical at every thread count
	// (docs/DETERMINISM.md).
	Threads int
	// Recorder, when non-nil, receives this rank's telemetry spans
	// (kernel and collective timing; docs/OBSERVABILITY.md). It never
	// affects results.
	Recorder *telemetry.Recorder
	// DisableRepeats turns off subtree site-repeat compression in the
	// likelihood kernels (docs/PERFORMANCE.md). Ablation only: results
	// are bit-identical either way.
	DisableRepeats bool
	// RepeatsMaxMem caps the per-rank memory (bytes) of the repeat class
	// tables; 0 means unbounded. Nodes whose table would exceed the cap
	// fall back to plain computation.
	RepeatsMaxMem int64
	// DisableSoA switches the likelihood kernels from the default SoA
	// (structure-of-arrays) CLV layout back to AoS (docs/PERFORMANCE.md
	// §6). Ablation only: results are bit-identical either way.
	DisableSoA bool
	// BatchSites sets the fused small-partition batching threshold in
	// patterns: local kernels below it are dispatched together as one
	// pool call per likelihood operation. 0 keeps the default
	// (enginecore.DefaultBatchSites); negative disables batching.
	// Ablation only: results are bit-identical either way.
	BatchSites int
}

// Engine is one rank's view of the de-centralized backend. It implements
// search.Engine.
type Engine struct {
	comm   *mpi.Comm
	local  *enginecore.Local
	hybrid int // ranks per node for hierarchical Allreduce; ≤1 = flat
}

// allreduce dispatches to the flat or hierarchical algorithm per the
// engine configuration.
func (e *Engine) allreduce(data []float64, class mpi.CommClass) []float64 {
	if e.hybrid > 1 {
		return e.comm.AllreduceHierarchical(data, mpi.OpSum, class, e.hybrid)
	}
	return e.comm.Allreduce(data, mpi.OpSum, class)
}

var _ search.Engine = (*Engine)(nil)

// NewEngine materializes rank comm.Rank()'s data share and builds its
// kernels. The assignment is computed by the caller (identically on every
// rank — it is a pure function of the pattern counts).
func NewEngine(comm *mpi.Comm, d *msa.Dataset, a *distrib.Assignment, cfg EngineConfig) (*Engine, error) {
	local, err := enginecore.NewLocal(d, a, comm.Rank(), cfg.Het, cfg.Subst, cfg.PerPartitionBranches, cfg.Threads)
	if err != nil {
		return nil, err
	}
	local.SetRecorder(cfg.Recorder)
	local.SetRepeats(!cfg.DisableRepeats, cfg.RepeatsMaxMem)
	local.ConfigurePerf(cfg.DisableSoA, cfg.BatchSites)
	comm.SetRecorder(cfg.Recorder)
	return &Engine{comm: comm, local: local, hybrid: cfg.HybridRanksPerNode}, nil
}

// SetLayout switches this rank's kernels between the SoA (true) and AoS
// (false) CLV layouts mid-run — live CLVs are transposed in place and
// results stay bit-identical (docs/DETERMINISM.md §8). Under the
// de-centralized scheme every rank runs the search loop, so a
// search.Config.OnIteration hook toggles every rank symmetrically.
func (e *Engine) SetLayout(soa bool) { e.local.SetLayout(soa) }

// SetBatchSites reconfigures this rank's fused small-partition batching
// threshold mid-run (0 disables). Bit-identical either way.
func (e *Engine) SetBatchSites(n int) { e.local.SetBatchSites(n) }

// NPartitions implements search.Engine.
func (e *Engine) NPartitions() int { return e.local.NPart }

// BLClasses implements search.Engine.
func (e *Engine) BLClasses() int { return e.local.BLClasses() }

// Traverse implements search.Engine: purely local CLV updates, no
// communication — the descriptor broadcast fork-join would need simply
// does not exist here.
func (e *Engine) Traverse(d *traversal.Descriptor) { e.local.Traverse(d) }

// Evaluate implements search.Engine: local traversal + evaluation, then a
// single Allreduce of the per-partition log likelihoods — the first of
// the paper's two Allreduce call sites.
func (e *Engine) Evaluate(d *traversal.Descriptor) []float64 {
	vec := e.local.EvaluateLocal(d)
	if e.comm.Rank() == 0 {
		e.comm.Meter().AddRegion(mpi.ClassLikelihoodEval)
	}
	return e.allreduce(vec, mpi.ClassLikelihoodEval)
}

// PrepareBranch implements search.Engine: local only.
func (e *Engine) PrepareBranch(d *traversal.Descriptor) { e.local.PrepareLocal(d) }

// BranchDerivatives implements search.Engine: local derivative sums, then
// a single Allreduce of 2·classes doubles — the second Allreduce call
// site.
func (e *Engine) BranchDerivatives(ts []float64) (d1, d2 []float64) {
	classes := e.local.BLClasses()
	vec := e.local.DerivativesLocal(ts)
	if e.comm.Rank() == 0 {
		e.comm.Meter().AddRegion(mpi.ClassBranchLength)
	}
	out := e.allreduce(vec, mpi.ClassBranchLength)
	return out[:classes], out[classes:]
}

// AllBranchDerivatives implements search.Engine: one local pre-order
// pass plus the fused per-edge gradient kernel, then ONE wide Allreduce
// of 2·classes·branches doubles. A whole Newton iteration over every
// branch costs a single collective where the per-branch oracle path
// pays one Allreduce per branch — the O(branches·iters) → O(iters)
// collective reduction of the batched gradient (docs/PERFORMANCE.md).
// The returned slice is reused by the next call.
func (e *Engine) AllBranchDerivatives(plan *traversal.GradPlan) []float64 {
	vec := e.local.AllBranchDerivativesLocal(plan)
	if e.comm.Rank() == 0 {
		e.comm.Meter().AddRegion(mpi.ClassBranchLength)
	}
	return e.allreduce(vec, mpi.ClassBranchLength)
}

// SetShared implements search.Engine: every rank computed the identical
// parameter trajectory, so this is a purely local apply — the fork-join
// broadcast the de-centralized scheme eliminates.
func (e *Engine) SetShared(params [][]float64) {
	if err := e.local.SetSharedLocal(params); err != nil {
		panic(fmt.Sprintf("decentral: set shared: %v", err))
	}
}

// OptimizeSiteRates implements search.Engine (PSR only): per-site Brent
// locally, one small Allreduce of the per-partition rate-cell statistics,
// then local category finalize + rate normalization.
func (e *Engine) OptimizeSiteRates(d *traversal.Descriptor) []float64 {
	classes := e.local.BLClasses()
	if e.local.Het != model.PSR {
		ones := make([]float64, classes)
		for c := range ones {
			ones[c] = 1
		}
		return ones
	}
	stats := e.local.OptimizeSiteRatesLocal(d)
	if e.comm.Rank() == 0 {
		e.comm.Meter().AddRegion(mpi.ClassModelParams)
	}
	stats = e.allreduce(stats, mpi.ClassModelParams)
	res := enginecore.ResolveSiteRates(stats, e.local.NPart, e.local.PerPartBranches)
	e.local.ApplySiteRates(res)
	return res.Scale
}

// Close implements search.Engine: releases the rank's intra-rank worker
// pool.
func (e *Engine) Close() { e.local.Close() }

// Stats reports this rank's kernel work and CLV footprint for the cluster
// cost model.
func (e *Engine) Stats() (columns int64, clvBytes float64) { return e.local.Stats() }
