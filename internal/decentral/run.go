package decentral

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/distrib"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// RunConfig bundles everything a de-centralized inference needs.
type RunConfig struct {
	// Search is the tree-search configuration.
	Search search.Config
	// Ranks is the number of MPI ranks (goroutines).
	Ranks int
	// Strategy selects cyclic or MPS data distribution.
	Strategy distrib.Strategy
	// HybridRanksPerNode enables hierarchical Allreduce (see
	// EngineConfig.HybridRanksPerNode).
	HybridRanksPerNode int
	// Threads is the intra-rank worker count per rank (see
	// EngineConfig.Threads); ≤ 1 runs the kernels serially.
	Threads int
	// Telemetry, when non-nil, supplies one recorder per rank for
	// kernel/collective span timing and search-progress counters
	// (docs/OBSERVABILITY.md). The collector must have been built for
	// at least Ranks ranks; nil disables instrumentation entirely.
	Telemetry *telemetry.Collector
	// DisableRepeats and RepeatsMaxMem mirror EngineConfig.
	DisableRepeats bool
	RepeatsMaxMem  int64
	// DisableSoA and BatchSites mirror EngineConfig.
	DisableSoA bool
	BatchSites int
}

// RunStats captures the measured execution profile for the cost model and
// the benchmark harness.
type RunStats struct {
	// Comm is the metered collective trace.
	Comm mpi.Snapshot
	// MaxRankColumns and TotalColumns are kernel column-update counts.
	MaxRankColumns, TotalColumns int64
	// CLVBytesTotal is the summed CLV footprint.
	CLVBytesTotal float64
	// Wall is the measured wall-clock time of the run.
	Wall time.Duration
	// Ranks echoes the rank count.
	Ranks int
}

// runRank is the per-rank body shared by Run (one goroutine per rank)
// and RunOnComm (one OS process per rank): build the engine replica,
// run the identical search, report the kernel-side stats.
func runRank(c *mpi.Comm, d *msa.Dataset, assign *distrib.Assignment, cfg RunConfig, rec *telemetry.Recorder) (*search.Result, int64, float64, error) {
	eng, err := NewEngine(c, d, assign, EngineConfig{
		Het:                  cfg.Search.Het,
		Subst:                cfg.Search.Subst,
		PerPartitionBranches: cfg.Search.PerPartitionBranches,
		HybridRanksPerNode:   cfg.HybridRanksPerNode,
		Threads:              cfg.Threads,
		Recorder:             rec,
		DisableRepeats:       cfg.DisableRepeats,
		RepeatsMaxMem:        cfg.RepeatsMaxMem,
		DisableSoA:           cfg.DisableSoA,
		BatchSites:           cfg.BatchSites,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	defer eng.Close()
	scfg := cfg.Search
	scfg.Telemetry = rec
	s, err := search.NewSearcher(eng, d, scfg)
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := s.Run()
	cols, clv := eng.Stats()
	return res, cols, clv, err
}

// Run executes a full de-centralized inference: every rank materializes
// its share, builds a Searcher replica, and runs the identical algorithm;
// results are cross-checked for the bit-level consistency the scheme
// guarantees and rank 0's result is returned.
func Run(d *msa.Dataset, cfg RunConfig) (*search.Result, *RunStats, error) {
	if cfg.Ranks < 1 {
		return nil, nil, fmt.Errorf("decentral: %d ranks", cfg.Ranks)
	}
	counts := make([]int, d.NPartitions())
	for i, p := range d.Parts {
		counts[i] = p.NPatterns()
	}
	assign, err := distrib.Compute(cfg.Strategy, counts, cfg.Ranks)
	if err != nil {
		return nil, nil, err
	}
	world := mpi.NewWorld(cfg.Ranks)

	results := make([]*search.Result, cfg.Ranks)
	columns := make([]int64, cfg.Ranks)
	clvBytes := make([]float64, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	var mu sync.Mutex

	start := time.Now()
	world.Run(func(c *mpi.Comm) {
		rec := cfg.Telemetry.Recorder(c.Rank())
		res, cols, clv, err := runRank(c, d, assign, cfg, rec)
		mu.Lock()
		if err != nil {
			errs[c.Rank()] = err
		} else {
			results[c.Rank()] = res
			columns[c.Rank()] = cols
			clvBytes[c.Rank()] = clv
		}
		mu.Unlock()
	})
	wall := time.Since(start)

	for r, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("decentral: rank %d: %w", r, err)
		}
	}
	// Consistency check (§III-B): every replica must have reached the
	// bit-identical likelihood and the same topology.
	ref := results[0]
	refNewick := ref.Tree.Newick()
	for r := 1; r < cfg.Ranks; r++ {
		if math.Float64bits(results[r].LnL) != math.Float64bits(ref.LnL) {
			return nil, nil, fmt.Errorf("decentral: replica divergence: rank %d lnL %v != rank 0 lnL %v", r, results[r].LnL, ref.LnL)
		}
		if results[r].Tree.Newick() != refNewick {
			return nil, nil, fmt.Errorf("decentral: replica divergence: rank %d tree differs", r)
		}
	}

	stats := &RunStats{
		Comm:  world.Meter().Snapshot(),
		Wall:  wall,
		Ranks: cfg.Ranks,
	}
	for r := 0; r < cfg.Ranks; r++ {
		stats.TotalColumns += columns[r]
		if columns[r] > stats.MaxRankColumns {
			stats.MaxRankColumns = columns[r]
		}
		stats.CLVBytesTotal += clvBytes[r]
	}
	return ref, stats, nil
}
