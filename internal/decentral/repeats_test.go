package decentral

import (
	"math"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// requireIdentical asserts two full search results agree bit-for-bit:
// final likelihood, per-partition breakdown, topology, and iteration
// count.
func requireIdentical(t *testing.T, label string, got, want *search.Result) {
	t.Helper()
	if math.Float64bits(got.LnL) != math.Float64bits(want.LnL) {
		t.Errorf("%s: lnL %.17g not bit-identical to %.17g", label, got.LnL, want.LnL)
	}
	if len(got.PerPartitionLnL) != len(want.PerPartitionLnL) {
		t.Fatalf("%s: per-partition length mismatch", label)
	}
	for p := range want.PerPartitionLnL {
		if math.Float64bits(got.PerPartitionLnL[p]) != math.Float64bits(want.PerPartitionLnL[p]) {
			t.Errorf("%s: partition %d lnL not bit-identical", label, p)
		}
	}
	if got.Tree.Newick() != want.Tree.Newick() {
		t.Errorf("%s: topology differs", label)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s: %d iterations vs %d", label, got.Iterations, want.Iterations)
	}
}

// TestRepeatsAblationBitIdentical is the engine-level half of the
// site-repeat determinism contract (docs/DETERMINISM.md §5): a full
// de-centralized inference with subtree repeat compression enabled (the
// default) must reproduce the compression-disabled run bit-for-bit, for
// both rate models, serial and threaded kernels, and with incremental
// traversals either on (default) or forced full.
func TestRepeatsAblationBitIdentical(t *testing.T) {
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		for _, threads := range []int{1, 4} {
			d := makeDataset(t, 12, 2, 70, 9)
			cfg := search.Config{Het: het, Seed: 17, MaxIterations: 2}

			off, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads, DisableRepeats: true})
			if err != nil {
				t.Fatalf("%v T=%d repeats off: %v", het, threads, err)
			}
			on, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d repeats on: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" repeats on vs off", on, off)

			forcedCfg := cfg
			forcedCfg.ForceFullTraversals = true
			forced, _, err := Run(d, RunConfig{Search: forcedCfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d forced-full: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" repeats+incremental vs forced-full", on, forced)
		}
	}
}

// TestRepeatsCapBitIdentical pins that the memory knob changes work
// placement only: a run whose class tables are capped to a sliver (so
// most Newview calls fall back to the plain path mid-tree) still lands
// on the identical result.
func TestRepeatsCapBitIdentical(t *testing.T) {
	d := makeDataset(t, 10, 2, 60, 5)
	cfg := search.Config{Het: model.Gamma, Seed: 3, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, DisableRepeats: true})
	if err != nil {
		t.Fatal(err)
	}
	capped, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, RepeatsMaxMem: 256})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "capped repeats", capped, ref)
}

// TestRepeatsOverTCPBitIdentical runs the repeats-enabled inference as
// one mpinet TCP endpoint per rank and compares against the in-process
// compression-disabled run: the wire transport and the compressed
// kernels must both be invisible in the result bits.
func TestRepeatsOverTCPBitIdentical(t *testing.T) {
	d := makeDataset(t, 8, 2, 60, 3)
	const ranks = 3
	cfg := search.Config{Het: model.Gamma, Seed: 7, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: ranks, DisableRepeats: true})
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	results := make([]*search.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: 99})
			if err != nil {
				errs[rank] = err
				return
			}
			c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
			defer c.Close()
			res, _, err := RunOnComm(c, d, RunConfig{Search: cfg})
			results[rank], errs[rank] = res, err
		}(r)
	}
	wg.Wait()

	for r := 0; r < ranks; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		requireIdentical(t, "TCP repeats rank", results[r], ref)
	}
}
