package decentral

import (
	"math"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// requireIdenticalRuns asserts two finished searches are bit-identical:
// same likelihood bits, same per-partition breakdown, same topology,
// same iteration count.
func requireIdenticalRuns(t *testing.T, label string, got, want *search.Result) {
	t.Helper()
	if math.Float64bits(got.LnL) != math.Float64bits(want.LnL) {
		t.Errorf("%s: lnL %.17g not bit-identical to forced-full %.17g", label, got.LnL, want.LnL)
	}
	if got.Tree.Newick() != want.Tree.Newick() {
		t.Errorf("%s: topology differs from forced-full run", label)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s: %d iterations vs forced-full %d", label, got.Iterations, want.Iterations)
	}
	for i := range want.PerPartitionLnL {
		if math.Float64bits(got.PerPartitionLnL[i]) != math.Float64bits(want.PerPartitionLnL[i]) {
			t.Errorf("%s: partition %d lnL differs: %.17g vs %.17g",
				label, i, got.PerPartitionLnL[i], want.PerPartitionLnL[i])
		}
	}
}

// TestIncrementalMatchesForcedFull is the incremental-traversal
// determinism contract (docs/PERFORMANCE.md): the default dirty-overlay
// full-tree evaluations must reproduce the ForceFullTraversals
// trajectory bit-for-bit — same tree, same likelihood bits, same
// iteration count — for both rate models and across thread counts,
// while scheduling strictly fewer CLV recomputations. Replica
// consistency of the incremental run is asserted by Run itself.
func TestIncrementalMatchesForcedFull(t *testing.T) {
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		for _, threads := range []int{1, 4} {
			d := makeDataset(t, 12, 2, 70, 9)
			cfg := search.Config{Het: het, Seed: 17, MaxIterations: 3}

			forcedCfg := cfg
			forcedCfg.ForceFullTraversals = true
			forced, fStats, err := Run(d, RunConfig{Search: forcedCfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d forced: %v", het, threads, err)
			}
			inc, iStats, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d incremental: %v", het, threads, err)
			}
			label := het.String()
			requireIdenticalRuns(t, label, inc, forced)
			if iStats.TotalColumns >= fStats.TotalColumns {
				t.Errorf("%s T=%d: incremental scheduled %d columns, forced %d — no work was reused",
					label, threads, iStats.TotalColumns, fStats.TotalColumns)
			}
		}
	}
}

// TestIncrementalMatchesForcedFullTCP crosses the two switches the
// determinism contract quantifies over: a forced-full in-process run
// versus an incremental run with one mpinet TCP endpoint per rank must
// still agree on every bit.
func TestIncrementalMatchesForcedFullTCP(t *testing.T) {
	d := makeDataset(t, 10, 2, 60, 4)
	cfg := search.Config{Het: model.Gamma, Seed: 23, MaxIterations: 2}
	const ranks = 3

	forcedCfg := cfg
	forcedCfg.ForceFullTraversals = true
	forced, _, err := Run(d, RunConfig{Search: forcedCfg, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	results := make([]*search.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: 57})
			if err != nil {
				errs[rank] = err
				return
			}
			c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
			defer c.Close()
			res, _, err := RunOnComm(c, d, RunConfig{Search: cfg, Ranks: ranks})
			results[rank], errs[rank] = res, err
		}(r)
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		requireIdenticalRuns(t, "tcp", results[r], forced)
	}
}
