package decentral

import (
	"math/rand"
	"testing"

	"repro/internal/distrib"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/traversal"
	"repro/internal/tree"
)

// TestEngineSteadyStateAllocFree pins the allocation-free hot path: once
// warm (P-matrix cache populated, scratch arenas grown, repeat tables
// stored), the engine's Evaluate / PrepareBranch / BranchDerivatives
// cycle — the inner loop of every branch-length and model optimization —
// must not allocate at all on a single serial rank. Threaded pools and
// multi-rank messaging allocate by design (goroutine scheduling, channel
// payload copies), so the contract is pinned where it matters most: the
// per-call kernel and engine layers.
func TestEngineSteadyStateAllocFree(t *testing.T) {
	configs := []struct {
		name string
		cfg  EngineConfig
	}{
		// The default path is the SoA layout with fused batching (both
		// 60-pattern partitions sit below DefaultBatchSites), so the
		// 0-alloc contract covers the staged batch dispatch too.
		{"soa-batched", EngineConfig{Subst: model.GTR}},
		{"aos-unbatched", EngineConfig{Subst: model.GTR, DisableSoA: true, BatchSites: -1}},
	}
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		for _, tc := range configs {
			t.Run(het.String()+"/"+tc.name, func(t *testing.T) {
				testSteadyStateAllocFree(t, het, tc.cfg, tc.name == "soa-batched")
			})
		}
	}
}

func testSteadyStateAllocFree(t *testing.T, het model.Heterogeneity, ecfg EngineConfig, wantBatched bool) {
	d := makeDataset(t, 8, 2, 60, 3)
	counts := make([]int, d.NPartitions())
	for i, p := range d.Parts {
		counts[i] = p.NPatterns()
	}
	assign, err := distrib.Compute(distrib.Cyclic, counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	world := mpi.NewWorld(1)
	ecfg.Het = het
	eng, err := NewEngine(world.Comm(0), d, assign, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if batched := eng.local.BatchedKernels(); (batched > 0) != wantBatched {
		t.Fatalf("BatchedKernels() = %d, want batched=%v", batched, wantBatched)
	}

	tr := tree.NewRandom(d.Names, 1, rand.New(rand.NewSource(5)))
	edge := tr.Tip(0)
	desc := traversal.Build(tr, edge, true)
	ts := []float64{0.1}
	plan, _ := traversal.BuildGradient(tr, nil)

	// Warm-up: populate the P-matrix cache at the exact branch
	// lengths the measured loop uses, grow every scratch arena, and
	// store the repeat class tables.
	for i := 0; i < 2; i++ {
		eng.Evaluate(desc)
		eng.PrepareBranch(desc)
		eng.BranchDerivatives(ts)
		eng.AllBranchDerivatives(plan)
	}

	if allocs := testing.AllocsPerRun(50, func() {
		eng.Evaluate(desc)
		eng.PrepareBranch(desc)
		eng.BranchDerivatives(ts)
		eng.AllBranchDerivatives(plan)
	}); allocs != 0 {
		t.Errorf("%v: steady-state engine cycle allocates %.1f times per run", het, allocs)
	}
}
