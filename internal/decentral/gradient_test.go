package decentral

import (
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// TestBatchedGradientAblationBitIdentical is the de-centralized half of
// the batched-gradient determinism contract (docs/DETERMINISM.md §7): a
// full inference with the batched all-branch gradient smoother (the
// default) must reproduce the per-branch oracle run bit-for-bit, for
// both rate models and serial and threaded kernels — while spending
// strictly fewer branch-length collectives.
func TestBatchedGradientAblationBitIdentical(t *testing.T) {
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		for _, threads := range []int{1, 4} {
			d := makeDataset(t, 12, 2, 70, 9)
			cfg := search.Config{Het: het, Seed: 17, MaxIterations: 2}

			oracleCfg := cfg
			oracleCfg.DisableBatchedGradients = true
			oracle, oracleStats, err := Run(d, RunConfig{Search: oracleCfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d oracle: %v", het, threads, err)
			}
			batched, batchedStats, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d batched: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" batched vs oracle", batched, oracle)

			bOps := batchedStats.Comm.Ops[mpi.ClassBranchLength]
			oOps := oracleStats.Comm.Ops[mpi.ClassBranchLength]
			if bOps >= oOps {
				t.Errorf("%v T=%d: batched run spent %d branch-length collectives, oracle %d — want strictly fewer",
					het, threads, bOps, oOps)
			}
		}
	}
}

// TestBatchedGradientToggleMidRun flips the ablation switch between
// iterations of one run (via search.Searcher.SetBatchedGradients) and
// requires the result to stay bit-identical to an untouched default
// run: because both paths produce the same bits, switching them
// mid-stream must be invisible.
func TestBatchedGradientToggleMidRun(t *testing.T) {
	d := makeDataset(t, 12, 2, 70, 9)
	base := search.Config{Het: model.Gamma, Seed: 17, MaxIterations: 3}
	ref, _, err := Run(d, RunConfig{Search: base, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	toggled := base
	toggled.OnIteration = func(s *search.Searcher, iter int, lnL float64) {
		// Every rank replica runs the hook with identical state, so the
		// flag flips consistently across the world: oracle on even
		// iterations, batched on odd.
		s.SetBatchedGradients(iter%2 == 1)
	}
	got, _, err := Run(d, RunConfig{Search: toggled, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "mid-run gradient toggle", got, ref)
}

// TestBatchedGradientOverTCPBitIdentical runs the batched-gradient
// inference as one mpinet TCP endpoint per rank and compares against
// the in-process per-branch oracle: neither the wire transport nor the
// fused gradient path may show up in the result bits.
func TestBatchedGradientOverTCPBitIdentical(t *testing.T) {
	d := makeDataset(t, 8, 2, 60, 3)
	const ranks = 3
	cfg := search.Config{Het: model.Gamma, Seed: 7, MaxIterations: 2}
	oracleCfg := cfg
	oracleCfg.DisableBatchedGradients = true
	ref, _, err := Run(d, RunConfig{Search: oracleCfg, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	results := make([]*search.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: 101})
			if err != nil {
				errs[rank] = err
				return
			}
			c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
			defer c.Close()
			res, _, err := RunOnComm(c, d, RunConfig{Search: cfg})
			results[rank], errs[rank] = res, err
		}(r)
	}
	wg.Wait()

	for r := 0; r < ranks; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		requireIdentical(t, "TCP batched-gradient rank", results[r], ref)
	}
}
