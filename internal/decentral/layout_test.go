package decentral

import (
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// TestLayoutAblationBitIdentical is the de-centralized half of the CLV
// layout determinism contract (docs/DETERMINISM.md §8): a full
// inference on the default SoA layout with fused small-partition
// batching (this dataset's partitions sit below the threshold) must
// reproduce the AoS, batching-disabled run bit-for-bit, for both rate
// models and serial and threaded kernels — including each ablation
// flipped on its own.
func TestLayoutAblationBitIdentical(t *testing.T) {
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		for _, threads := range []int{1, 4} {
			d := makeDataset(t, 12, 2, 70, 9)
			cfg := search.Config{Het: het, Seed: 17, MaxIterations: 2}

			oracle, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads, DisableSoA: true, BatchSites: -1})
			if err != nil {
				t.Fatalf("%v T=%d aos/unbatched: %v", het, threads, err)
			}
			soa, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads})
			if err != nil {
				t.Fatalf("%v T=%d soa/batched: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" soa+batched vs aos+unbatched", soa, oracle)

			aosBatched, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads, DisableSoA: true})
			if err != nil {
				t.Fatalf("%v T=%d aos/batched: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" aos+batched", aosBatched, oracle)

			soaUnbatched, _, err := Run(d, RunConfig{Search: cfg, Ranks: 2, Threads: threads, BatchSites: -1})
			if err != nil {
				t.Fatalf("%v T=%d soa/unbatched: %v", het, threads, err)
			}
			requireIdentical(t, het.String()+" soa+unbatched", soaUnbatched, oracle)
		}
	}
}

// TestLayoutToggleMidRun flips the CLV layout (and the batching
// threshold) on the live engines between iterations of one run, via the
// OnIteration hook and the engine's SetLayout/SetBatchSites
// capabilities, and requires the result to stay bit-identical to an
// untouched default run: live CLVs are transposed in place, so the
// switch must be invisible in the bits.
func TestLayoutToggleMidRun(t *testing.T) {
	d := makeDataset(t, 12, 2, 70, 9)
	base := search.Config{Het: model.Gamma, Seed: 17, MaxIterations: 3}
	ref, _, err := Run(d, RunConfig{Search: base, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	toggled := base
	toggled.OnIteration = func(s *search.Searcher, iter int, lnL float64) {
		// Every rank replica runs the hook with identical state, so the
		// layout flips consistently across the world: AoS after odd
		// iterations, back to SoA (with batching re-enabled) after even.
		eng := s.Engine().(interface {
			SetLayout(bool)
			SetBatchSites(int)
		})
		if iter%2 == 1 {
			eng.SetLayout(false)
			eng.SetBatchSites(0)
		} else {
			eng.SetLayout(true)
			eng.SetBatchSites(0)
			eng.SetBatchSites(1 << 20)
		}
	}
	got, _, err := Run(d, RunConfig{Search: toggled, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "mid-run layout toggle", got, ref)
}

// TestLayoutOverTCPBitIdentical runs the default SoA+batched inference
// as one mpinet TCP endpoint per rank and compares against the
// in-process AoS unbatched oracle: neither the wire transport, the
// layout, nor the fused dispatch may show up in the result bits.
func TestLayoutOverTCPBitIdentical(t *testing.T) {
	d := makeDataset(t, 8, 2, 60, 3)
	const ranks = 3
	cfg := search.Config{Het: model.Gamma, Seed: 7, MaxIterations: 2}
	ref, _, err := Run(d, RunConfig{Search: cfg, Ranks: ranks, DisableSoA: true, BatchSites: -1})
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	results := make([]*search.Result, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: 113})
			if err != nil {
				errs[rank] = err
				return
			}
			c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
			defer c.Close()
			res, _, err := RunOnComm(c, d, RunConfig{Search: cfg})
			results[rank], errs[rank] = res, err
		}(r)
	}
	wg.Wait()

	for r := 0; r < ranks; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		requireIdentical(t, "TCP layout rank", results[r], ref)
	}
}
