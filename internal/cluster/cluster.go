// Package cluster converts metered execution traces (collective-operation
// counts, payload bytes, kernel column-update counts, memory footprints)
// into projected wall-clock times on a cluster of the paper's class — the
// substitution for the 50-node AMD Magny-Cours machine the original
// experiments ran on.
//
// The model is deliberately simple and standard (a LogGP-flavored
// collective model plus a bandwidth-bound compute rate and a swap
// penalty): the reproduction's claims concern *ratios and shapes* (which
// scheme wins, where the crossover lies), which depend on the relative
// comm/compute volumes captured in the trace, not on the constants.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Hardware holds the machine constants used for projection. The defaults
// (see MagnyCours) approximate the paper's test platform: 48-core AMD
// Opteron 6174 nodes on QLogic InfiniBand.
type Hardware struct {
	// LatencySec is the per-message collective latency (α).
	LatencySec float64
	// BandwidthBytesPerSec is the point-to-point bandwidth (β).
	BandwidthBytesPerSec float64
	// ColumnRatePerCore is how many CLV column updates (pattern ×
	// category) one core executes per second; likelihood kernels are
	// memory-bandwidth-bound, so this is an effective, not peak, rate.
	ColumnRatePerCore float64
	// CoresPerNode is the node width (48 on the paper's machine).
	CoresPerNode int
	// RAMPerNodeBytes is the per-node memory capacity.
	RAMPerNodeBytes float64
	// SwapPenalty multiplies compute time when the working set exceeds
	// RAM (the effect behind the paper's super-linear Γ speedups on 1–2
	// nodes).
	SwapPenalty float64
}

// MagnyCours returns constants approximating the paper's cluster (2013-era
// hardware).
func MagnyCours() Hardware {
	return Hardware{
		LatencySec:           3e-6,  // InfiniBand collective hop
		BandwidthBytesPerSec: 2.5e9, // QDR-ish effective bandwidth
		ColumnRatePerCore:    25e6,  // CLV columns/s, memory-bound
		CoresPerNode:         48,
		RAMPerNodeBytes:      128e9,
		SwapPenalty:          2.2,
	}
}

// Trace is everything the projection needs about one run, gathered by the
// engines: the per-class communication snapshot and per-rank compute
// volume at the measurement rank count.
type Trace struct {
	// Comm is the metered collective trace.
	Comm mpi.Snapshot
	// MaxRankColumns is the column-update count of the most loaded rank.
	MaxRankColumns int64
	// TotalColumns is the summed column-update count over all ranks.
	TotalColumns int64
	// MeasuredRanks is the rank count the trace was captured at.
	MeasuredRanks int
	// CLVBytesTotal is the total CLV working set across all ranks.
	CLVBytesTotal float64
}

// Projection is the modeled execution breakdown at a target scale.
type Projection struct {
	// Ranks is the projected rank count.
	Ranks int
	// Nodes is ⌈Ranks/CoresPerNode⌉.
	Nodes int
	// ComputeSec, CommSec, and TotalSec are the modeled times.
	ComputeSec, CommSec, TotalSec float64
	// Swapping reports whether the memory model predicts thrashing.
	Swapping bool
}

// Project models the trace's run at a different rank count. Compute work
// is divided over ranks with the imbalance of the measured assignment
// preserved; each collective costs (α + bytes/β)·⌈log₂ p⌉; the CLV working
// set per node is compared against RAM to decide the swap penalty.
func Project(tr Trace, ranks int, hw Hardware) (Projection, error) {
	if ranks < 1 {
		return Projection{}, fmt.Errorf("cluster: %d ranks", ranks)
	}
	if tr.MeasuredRanks < 1 || tr.TotalColumns < 0 {
		return Projection{}, fmt.Errorf("cluster: invalid trace (%d measured ranks)", tr.MeasuredRanks)
	}
	p := Projection{Ranks: ranks}
	p.Nodes = (ranks + hw.CoresPerNode - 1) / hw.CoresPerNode

	// Compute: preserve the measured imbalance factor while rescaling
	// the per-rank share.
	imbalance := 1.0
	if tr.TotalColumns > 0 && tr.MaxRankColumns > 0 {
		perfect := float64(tr.TotalColumns) / float64(tr.MeasuredRanks)
		if perfect > 0 {
			imbalance = float64(tr.MaxRankColumns) / perfect
			if imbalance < 1 {
				imbalance = 1
			}
		}
	}
	perRank := float64(tr.TotalColumns) / float64(ranks) * imbalance
	p.ComputeSec = perRank / hw.ColumnRatePerCore

	// Memory: CLV set spread over the projected nodes.
	if hw.RAMPerNodeBytes > 0 && tr.CLVBytesTotal/float64(p.Nodes) > hw.RAMPerNodeBytes {
		p.Swapping = true
		p.ComputeSec *= hw.SwapPenalty
	}

	// Communication: per-op latency plus per-byte transfer, each scaled
	// by the binomial tree depth.
	depth := math.Ceil(math.Log2(float64(ranks)))
	if depth < 1 {
		depth = 1
	}
	ops := float64(tr.Comm.TotalOps())
	bytes := float64(tr.Comm.TotalBytes())
	p.CommSec = depth * (ops*hw.LatencySec + bytes/hw.BandwidthBytesPerSec)

	p.TotalSec = p.ComputeSec + p.CommSec
	return p, nil
}

// Speedup returns base.TotalSec / p.TotalSec.
func Speedup(base, p Projection) float64 {
	if p.TotalSec == 0 {
		return math.Inf(1)
	}
	return base.TotalSec / p.TotalSec
}
