package cluster

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func testTrace() Trace {
	var snap mpi.Snapshot
	snap.Ops[mpi.ClassLikelihoodEval] = 100_000
	snap.Bytes[mpi.ClassLikelihoodEval] = 100_000 * 80
	// Proportions modeled on a real run: hours of per-rank kernel work
	// against ~1e5 collectives.
	return Trace{
		Comm:           snap,
		MaxRankColumns: 2e11,
		TotalColumns:   48 * 2e11,
		MeasuredRanks:  48,
		CLVBytesTotal:  64e9,
	}
}

func TestProjectBasics(t *testing.T) {
	hw := MagnyCours()
	tr := testTrace()
	p48, err := Project(tr, 48, hw)
	if err != nil {
		t.Fatal(err)
	}
	p96, err := Project(tr, 96, hw)
	if err != nil {
		t.Fatal(err)
	}
	if p48.Nodes != 1 || p96.Nodes != 2 {
		t.Fatalf("nodes: %d, %d", p48.Nodes, p96.Nodes)
	}
	if !(p96.ComputeSec < p48.ComputeSec) {
		t.Fatal("doubling ranks must reduce compute time")
	}
	if !(p96.CommSec > p48.CommSec) {
		t.Fatal("deeper tree must increase comm time")
	}
	if p48.TotalSec != p48.ComputeSec+p48.CommSec {
		t.Fatal("total != compute + comm")
	}
}

func TestProjectDiminishingReturns(t *testing.T) {
	// With fixed comm volume, speedup must flatten as ranks grow.
	hw := MagnyCours()
	tr := testTrace()
	base, _ := Project(tr, 48, hw)
	prevSpeedup := 1.0
	prevGain := math.Inf(1)
	for _, ranks := range []int{96, 192, 384, 768, 1536} {
		p, err := Project(tr, ranks, hw)
		if err != nil {
			t.Fatal(err)
		}
		s := Speedup(base, p)
		if s < prevSpeedup*0.9 {
			t.Fatalf("speedup collapsed at %d ranks: %g < %g", ranks, s, prevSpeedup)
		}
		gain := s / prevSpeedup
		if gain > prevGain*1.2 {
			t.Fatalf("parallel efficiency should not improve with scale: gain %g after %g", gain, prevGain)
		}
		prevSpeedup, prevGain = s, gain
	}
}

func TestProjectSwapPenalty(t *testing.T) {
	hw := MagnyCours()
	tr := testTrace()
	tr.CLVBytesTotal = 300e9 // exceeds 128 GB/node on 1–2 nodes
	p1, err := Project(tr, 48, hw)
	if err != nil {
		t.Fatal(err)
	}
	if !p1.Swapping {
		t.Fatal("1 node with 300 GB working set must swap")
	}
	p4, err := Project(tr, 4*48, hw)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Swapping {
		t.Fatal("4 nodes with 75 GB/node must not swap")
	}
	// The paper's super-linear artifact: going 1→4 nodes gains more than
	// 4× because the swap penalty disappears.
	if s := Speedup(p1, p4); s < 4 {
		t.Fatalf("swap-relief speedup = %g, want super-linear (>4)", s)
	}
}

func TestProjectImbalancePreserved(t *testing.T) {
	hw := MagnyCours()
	tr := testTrace()
	balanced := tr
	balanced.MaxRankColumns = tr.TotalColumns / int64(tr.MeasuredRanks)
	skewed := tr
	skewed.MaxRankColumns = 3 * tr.TotalColumns / int64(tr.MeasuredRanks)
	pb, _ := Project(balanced, 192, hw)
	ps, _ := Project(skewed, 192, hw)
	if !(ps.ComputeSec > 2.5*pb.ComputeSec) {
		t.Fatalf("3× imbalance must show in compute time: %g vs %g", ps.ComputeSec, pb.ComputeSec)
	}
}

func TestProjectErrors(t *testing.T) {
	hw := MagnyCours()
	if _, err := Project(testTrace(), 0, hw); err == nil {
		t.Error("0 ranks accepted")
	}
	bad := testTrace()
	bad.MeasuredRanks = 0
	if _, err := Project(bad, 48, hw); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSpeedupEdge(t *testing.T) {
	if !math.IsInf(Speedup(Projection{TotalSec: 1}, Projection{}), 1) {
		t.Error("speedup vs zero time should be +Inf")
	}
}
