package traversal

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tree"
)

// TestGradPlanEncodeDecodeRoundTrip pins the gradient-plan wire format:
// decoding an encoded plan must reproduce it exactly (structure shared
// across classes, per-class branch lengths bit-preserved), and the
// encoded frame must be exactly WireSize bytes — the figure the
// single-rank fork-join master meters without encoding.
func TestGradPlanEncodeDecodeRoundTrip(t *testing.T) {
	for _, classes := range []int{1, 3} {
		tr := tree.NewRandom(taxa(14), classes, rand.New(rand.NewSource(11)))
		plan, _ := BuildGradient(tr, nil)

		buf := plan.Encode()
		if len(buf) != plan.WireSize() {
			t.Errorf("classes=%d: encoded %d bytes, WireSize says %d", classes, len(buf), plan.WireSize())
		}
		got, err := DecodeGradPlan(buf)
		if err != nil {
			t.Fatalf("classes=%d: decode: %v", classes, err)
		}
		if !reflect.DeepEqual(got, plan) {
			t.Errorf("classes=%d: decoded plan differs from original", classes)
		}
	}
}

// TestGradPlanDecodeRejectsCorruption pins that truncated or padded
// frames fail loudly instead of yielding a silently wrong plan.
func TestGradPlanDecodeRejectsCorruption(t *testing.T) {
	tr := tree.NewRandom(taxa(10), 1, rand.New(rand.NewSource(4)))
	plan, _ := BuildGradient(tr, nil)
	buf := plan.Encode()

	if _, err := DecodeGradPlan(buf[:len(buf)-3]); err == nil {
		t.Error("truncated frame decoded without error")
	}
	if _, err := DecodeGradPlan(append(append([]byte(nil), buf...), 0)); err == nil {
		t.Error("padded frame decoded without error")
	}
}
