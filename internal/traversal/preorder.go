package traversal

// Pre-order ("outward") gradient schedules: the root-to-tip analogue of
// the post-order descriptors in traversal.go. A GradPlan lists, for a
// tree rooted at the virtual root on tip 0's edge, (a) the pre-order
// steps that compute every outer vector (likelihood.NewviewOuter) and
// (b) one (P, Q) operand pair per edge for the fused all-branch
// gradient kernel. Executing the post-order full traversal, then the
// plan's pre-order steps, makes (d1, d2) of EVERY branch computable in
// one pass each — O(1) traversals per Newton iteration instead of
// O(branches) (docs/PERFORMANCE.md).
//
// Like the post-order descriptor, both engines share the construction:
// the de-centralized engine builds the plan locally on every rank, the
// fork-join master encodes it with Encode and broadcasts the bytes.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// GradEdge holds the fused gradient kernel's operands for one edge: P
// the conditional vector below the edge (tip or post-order CLV), Q the
// outer vector above it.
type GradEdge struct {
	P, Q likelihood.GradRef
}

// GradPlan is the all-branch gradient schedule for one tree state.
type GradPlan struct {
	// Pre[c] is the pre-order step schedule with class-c branch lengths
	// (classes share structure, like Descriptor.Steps).
	Pre [][]likelihood.GradStep
	// Edges lists the per-edge kernel operands, root edge first, then
	// depth-first order. The edge order is what indexes the result
	// vector of AllBranchDerivatives.
	Edges []GradEdge
	// T[c][b] is edge b's length in class c.
	T [][]float64
	// Active, when non-nil, marks the edges whose derivatives the
	// caller still needs (indexed like Edges); the kernels skip
	// inactive edges, leaving their result slots zero. nil means every
	// edge. The simultaneous Newton smoother narrows the mask as
	// branches converge, so late inner iterations only pay for the
	// stragglers.
	Active []bool
	// Reuse marks a plan whose edge set and underlying CLV/outer-vector
	// state are unchanged since the engines' previous all-branch
	// gradient call: the kernels re-evaluate each edge's derivatives at
	// the plan's (new) lengths from the sum tables that call cached
	// (likelihood.BranchGradientReuse) instead of re-contracting P·Q.
	// The simultaneous Newton smoother sets it on every inner iteration
	// after a sweep's first.
	Reuse bool
}

// NBranches returns the number of edges the plan covers.
func (p *GradPlan) NBranches() int { return len(p.Edges) }

// BuildGradient computes the gradient plan for t, rooted at the virtual
// root on tip 0's edge. The post-order CLVs the plan's P operands and
// step B operands reference are the ones a full traversal toward tip 0
// leaves behind (search.buildFull); the pre-order steps are emitted
// parents-before-children so TraverseOuter can execute them in order.
//
// skip, when non-nil, is indexed by vertex ID and marks vertices whose
// outer vector is unchanged since the previous iteration (every changed
// edge lies on or below the vertex's parent edge): their pre-order
// steps are omitted and the kernel reuses the stored vector. Edges are
// always all listed regardless of skip.
//
// The second result gives one representative half-node per edge, in
// plan order: the child-side half-node whose Back faces the root. It
// is what the per-branch oracle path re-roots on (traversal.Build) to
// reproduce the plan's (P, Q) operand roles exactly.
func BuildGradient(t *tree.Tree, skip []bool) (*GradPlan, []*tree.Node) {
	n := t.NTaxa()
	nB := t.NBranches()
	classes := t.BLClasses
	tip0 := t.Tip(0)
	rb := tip0.Back

	plan := &GradPlan{
		Pre:   make([][]likelihood.GradStep, classes),
		Edges: make([]GradEdge, 0, nB),
		T:     make([][]float64, classes),
	}
	nodes := make([]*tree.Node, 0, nB)
	// stepNodes[i] is the parent-ring half-node of step i (the one whose
	// Back is the step's destination), for per-class length re-reads.
	stepNodes := make([]*tree.Node, 0, nB-1)
	var steps []likelihood.GradStep

	// Root edge: P is tip 0 itself, Q the post-order CLV at rb — the
	// vector a full traversal rooted on this edge computes. No pre-order
	// step is needed.
	plan.Edges = append(plan.Edges, GradEdge{
		P: likelihood.GradTip(int32(tip0.TaxonID)),
		Q: likelihood.GradInner(int32(rb.VertexID - n)),
	})
	nodes = append(nodes, tip0)

	// gradRef resolves one parent-ring half-node to a step operand: the
	// rootward member (h == up) contributes the parent's own outer
	// vector (or the root tip), a sibling member contributes the
	// post-order CLV (or tip) at its far end.
	gradRef := func(h, up *tree.Node) likelihood.GradRef {
		if h == up {
			if h.Back.IsTip() {
				return likelihood.GradTip(int32(h.Back.TaxonID))
			}
			return likelihood.GradOuter(int32(h.VertexID))
		}
		if w := h.Back; w.IsTip() {
			return likelihood.GradTip(int32(w.TaxonID))
		}
		return likelihood.GradInner(int32(h.Back.VertexID - n))
	}

	var walk func(u, up *tree.Node)
	walk = func(u, up *tree.Node) {
		child := u.Back
		if skip == nil || !skip[child.VertexID] {
			// The A/B operand order matches Orient's (u.Next then
			// u.Next.Next): re-rooting the post-order traversal on the
			// child edge would compute the parent's CLV from exactly
			// these operands in exactly this order, which is the
			// operation-for-operation half of the bit-identity argument.
			steps = append(steps, likelihood.GradStep{
				Dst: int32(child.VertexID),
				A:   gradRef(u.Next, up),
				B:   gradRef(u.Next.Next, up),
				TA:  u.Next.Length(0),
				TB:  u.Next.Next.Length(0),
			})
			stepNodes = append(stepNodes, u)
		}
		if child.IsTip() {
			plan.Edges = append(plan.Edges, GradEdge{
				P: likelihood.GradTip(int32(child.TaxonID)),
				Q: likelihood.GradOuter(int32(child.VertexID)),
			})
			nodes = append(nodes, child)
			return
		}
		plan.Edges = append(plan.Edges, GradEdge{
			P: likelihood.GradInner(int32(child.VertexID - n)),
			Q: likelihood.GradOuter(int32(child.VertexID)),
		})
		nodes = append(nodes, child)
		walk(child.Next, child)
		walk(child.Next.Next, child)
	}
	walk(rb.Next, rb)
	walk(rb.Next.Next, rb)

	plan.Pre[0] = steps
	plan.T[0] = make([]float64, len(nodes))
	for b, nd := range nodes {
		plan.T[0][b] = nd.Length(0)
	}
	for c := 1; c < classes; c++ {
		cs := make([]likelihood.GradStep, len(steps))
		copy(cs, steps)
		for i := range cs {
			cs[i].TA = stepNodes[i].Next.Length(c)
			cs[i].TB = stepNodes[i].Next.Next.Length(c)
		}
		plan.Pre[c] = cs
		ts := make([]float64, len(nodes))
		for b, nd := range nodes {
			ts[b] = nd.Length(c)
		}
		plan.T[c] = ts
	}
	return plan, nodes
}

// WireSize returns the number of bytes EncodeGradPlan produces.
func (p *GradPlan) WireSize() int {
	nSteps := 0
	if len(p.Pre) > 0 {
		nSteps = len(p.Pre[0])
	}
	classes := len(p.T)
	// Header: classes, steps, edges, flags byte (bit 0: mask present,
	// bit 1: reuse). Structure: per step
	// dst + two refs (1 kind byte + 8-byte index each); per edge two
	// refs plus, when the mask is present, one active byte. Payload per
	// class: per-step TA/TB, per-edge T.
	active := 0
	if p.Active != nil {
		active = len(p.Edges)
	}
	return 13 + nSteps*(4+2*9) + len(p.Edges)*2*9 + active + classes*(nSteps*16+len(p.Edges)*8)
}

// Encode serializes the plan (little-endian, structure shared across
// classes, lengths per class — the Descriptor wire idiom).
func (p *GradPlan) Encode() []byte {
	buf := make([]byte, 0, p.WireSize())
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	put64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	putRef := func(r likelihood.GradRef) {
		buf = append(buf, byte(r.Kind))
		put64(uint64(uint32(r.Idx)))
	}
	nSteps := 0
	if len(p.Pre) > 0 {
		nSteps = len(p.Pre[0])
	}
	put32(uint32(len(p.Pre)))
	put32(uint32(nSteps))
	put32(uint32(len(p.Edges)))
	var flags byte
	if p.Active != nil {
		flags |= 1
	}
	if p.Reuse {
		flags |= 2
	}
	buf = append(buf, flags)
	if nSteps > 0 {
		for _, s := range p.Pre[0] {
			put32(uint32(s.Dst))
			putRef(s.A)
			putRef(s.B)
		}
	}
	for _, e := range p.Edges {
		putRef(e.P)
		putRef(e.Q)
	}
	for _, a := range p.Active {
		if a {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	for c := range p.Pre {
		for _, s := range p.Pre[c] {
			put64(math.Float64bits(s.TA))
			put64(math.Float64bits(s.TB))
		}
		for _, t := range p.T[c] {
			put64(math.Float64bits(t))
		}
	}
	return buf
}

// DecodeGradPlan reverses Encode.
func DecodeGradPlan(buf []byte) (*GradPlan, error) {
	pos := 0
	get32 := func() (uint32, error) {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("traversal: truncated gradient plan")
		}
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("traversal: truncated gradient plan")
		}
		v := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}
	getRef := func() (likelihood.GradRef, error) {
		if pos+1 > len(buf) {
			return likelihood.GradRef{}, fmt.Errorf("traversal: truncated gradient plan")
		}
		kind := likelihood.GradKind(buf[pos])
		pos++
		v, err := get64()
		if err != nil {
			return likelihood.GradRef{}, err
		}
		return likelihood.GradRef{Kind: kind, Idx: int32(uint32(v))}, nil
	}
	nClasses, err := get32()
	if err != nil {
		return nil, err
	}
	nSteps, err := get32()
	if err != nil {
		return nil, err
	}
	nEdges, err := get32()
	if err != nil {
		return nil, err
	}
	if pos+1 > len(buf) {
		return nil, fmt.Errorf("traversal: truncated gradient plan")
	}
	flags := buf[pos]
	hasActive := flags&1 != 0
	pos++
	if nClasses > 1<<20 || nSteps > 1<<24 || nEdges > 1<<24 {
		return nil, fmt.Errorf("traversal: implausible gradient-plan header (%d classes, %d steps, %d edges)", nClasses, nSteps, nEdges)
	}
	p := &GradPlan{
		Pre:   make([][]likelihood.GradStep, nClasses),
		Edges: make([]GradEdge, nEdges),
		T:     make([][]float64, nClasses),
		Reuse: flags&2 != 0,
	}
	structure := make([]likelihood.GradStep, nSteps)
	for i := range structure {
		dst, err := get32()
		if err != nil {
			return nil, err
		}
		structure[i].Dst = int32(dst)
		if structure[i].A, err = getRef(); err != nil {
			return nil, err
		}
		if structure[i].B, err = getRef(); err != nil {
			return nil, err
		}
	}
	for i := range p.Edges {
		if p.Edges[i].P, err = getRef(); err != nil {
			return nil, err
		}
		if p.Edges[i].Q, err = getRef(); err != nil {
			return nil, err
		}
	}
	if hasActive {
		if pos+int(nEdges) > len(buf) {
			return nil, fmt.Errorf("traversal: truncated gradient plan")
		}
		p.Active = make([]bool, nEdges)
		for i := range p.Active {
			p.Active[i] = buf[pos+i] != 0
		}
		pos += int(nEdges)
	}
	for c := 0; c < int(nClasses); c++ {
		cs := make([]likelihood.GradStep, nSteps)
		copy(cs, structure)
		for i := range cs {
			ta, err := get64()
			if err != nil {
				return nil, err
			}
			tb, err := get64()
			if err != nil {
				return nil, err
			}
			cs[i].TA = math.Float64frombits(ta)
			cs[i].TB = math.Float64frombits(tb)
		}
		p.Pre[c] = cs
		ts := make([]float64, nEdges)
		for i := range ts {
			v, err := get64()
			if err != nil {
				return nil, err
			}
			ts[i] = math.Float64frombits(v)
		}
		p.T[c] = ts
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("traversal: %d trailing bytes in gradient plan", len(buf)-pos)
	}
	return p, nil
}
