// Package traversal computes traversal descriptors: the post-order
// schedules of CLV updates that make the conditional likelihood vectors at
// the endpoints of a chosen edge valid, so the likelihood (or its
// derivatives) can be evaluated at a virtual root on that edge.
//
// In the fork-join scheme the master computes a descriptor and broadcasts
// it to every worker before each parallel region — the traffic the paper's
// Table I shows to dominate total MPI volume (30–97%). In the
// de-centralized scheme every rank computes the same descriptor locally
// and nothing is sent. Both engines share this package, which is exactly
// how the paper achieves "the same tree search algorithm".
package traversal

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// Ref converts a tree half-node into a kernel operand: tips address taxon
// rows, inner vertices address CLV slots (VertexID − nTaxa).
func Ref(t *tree.Tree, n *tree.Node) likelihood.NodeRef {
	if n.IsTip() {
		return likelihood.TipRef(n.TaxonID)
	}
	return likelihood.InnerRef(n.VertexID - t.NTaxa())
}

// Slot returns the CLV slot of an inner half-node.
func Slot(t *tree.Tree, n *tree.Node) int32 {
	return int32(n.VertexID - t.NTaxa())
}

// Orient appends to steps the CLV updates required to make the CLV at u
// valid for a virtual root on u's own edge, honoring the per-vertex X
// orientation bits: a vertex whose X bit already points along the needed
// direction is assumed valid and recursion stops there (a *partial*
// traversal — the paper notes descriptors average only 4–5 nodes). With
// force set, every vertex in the subtree is recomputed regardless of X
// bits (required after a model-parameter change). X bits are rotated to
// describe the new state.
//
// blClass selects which branch-length linkage class the step lengths are
// taken from (0 under joint estimation; the partition index under -M).
func Orient(t *tree.Tree, u *tree.Node, blClass int, force bool, steps []likelihood.Step) []likelihood.Step {
	if u.IsTip() {
		return steps
	}
	if u.X && !force {
		return steps
	}
	l := u.Next.Back
	r := u.Next.Next.Back
	steps = Orient(t, l, blClass, force, steps)
	steps = Orient(t, r, blClass, force, steps)
	tree.OrientX(u)
	return append(steps, likelihood.Step{
		Dst: Slot(t, u),
		A:   Ref(t, l),
		B:   Ref(t, r),
		TA:  u.Next.Length(blClass),
		TB:  u.Next.Next.Length(blClass),
	})
}

// ForEdge computes the descriptor that validates both endpoints of the
// edge at p (p and p.Back) for a virtual root on that edge.
func ForEdge(t *tree.Tree, p *tree.Node, blClass int, force bool) []likelihood.Step {
	steps := Orient(t, p, blClass, force, nil)
	return Orient(t, p.Back, blClass, force, steps)
}

// OrientReuse is Orient(force=false) extended with a dirty-slot overlay —
// the incremental-traversal machinery of docs/PERFORMANCE.md. Recursion
// stops at a vertex only when its X bit already faces the needed
// direction AND its slot is not marked dirty; on a stop the subtree
// below is still swept so every dirty slot in it is refreshed
// (children-first and rotated toward the evaluation edge, exactly the
// state a forced traversal would leave it in). Refreshed slots are
// cleared in dirty, so after the descriptor executes, every CLV the
// search can subsequently read holds the bytes a forced full traversal
// would have produced — the invariant the search layer's bit-identity
// rests on.
func OrientReuse(t *tree.Tree, u *tree.Node, blClass int, dirty []bool, steps []likelihood.Step) []likelihood.Step {
	if u.IsTip() {
		return steps
	}
	slot := Slot(t, u)
	if u.X && !dirty[slot] {
		steps = sweepDirty(t, u.Next.Back, blClass, dirty, steps)
		return sweepDirty(t, u.Next.Next.Back, blClass, dirty, steps)
	}
	l := u.Next.Back
	r := u.Next.Next.Back
	steps = OrientReuse(t, l, blClass, dirty, steps)
	steps = OrientReuse(t, r, blClass, dirty, steps)
	tree.OrientX(u)
	dirty[slot] = false
	return append(steps, likelihood.Step{
		Dst: slot,
		A:   Ref(t, l),
		B:   Ref(t, r),
		TA:  u.Next.Length(blClass),
		TB:  u.Next.Next.Length(blClass),
	})
}

// sweepDirty refreshes every dirty slot in the subtree entered through v
// (v.Back faces the evaluation edge) without touching valid clean
// vertices. A refreshed vertex is rotated toward the evaluation side
// (OrientX), matching the orientation a forced traversal would give it;
// its children were swept first, so a refresh never reads a stale CLV
// that is itself marked dirty.
func sweepDirty(t *tree.Tree, v *tree.Node, blClass int, dirty []bool, steps []likelihood.Step) []likelihood.Step {
	if v.IsTip() {
		return steps
	}
	l := v.Next.Back
	r := v.Next.Next.Back
	steps = sweepDirty(t, l, blClass, dirty, steps)
	steps = sweepDirty(t, r, blClass, dirty, steps)
	slot := Slot(t, v)
	if dirty[slot] {
		tree.OrientX(v)
		dirty[slot] = false
		steps = append(steps, likelihood.Step{
			Dst: slot,
			A:   Ref(t, l),
			B:   Ref(t, r),
			TA:  v.Next.Length(blClass),
			TB:  v.Next.Next.Length(blClass),
		})
	}
	return steps
}

// ForEdgeReuse is ForEdge with the dirty-slot overlay of OrientReuse.
func ForEdgeReuse(t *tree.Tree, p *tree.Node, blClass int, dirty []bool) []likelihood.Step {
	steps := OrientReuse(t, p, blClass, dirty, nil)
	return OrientReuse(t, p.Back, blClass, dirty, steps)
}

// Descriptor bundles the CLV schedule for every branch-length class with
// the evaluation edge, ready for execution or (in the fork-join engine)
// for broadcast. Steps[c] is the schedule with class-c branch lengths;
// under joint branch lengths there is a single class and a single
// schedule, under -M there are p schedules sharing one structure but
// carrying p·(2n−3)-scale branch-length payloads — the size blow-up the
// paper measures in Table I.
type Descriptor struct {
	// Steps[c] is the CLV schedule for linkage class c.
	Steps [][]likelihood.Step
	// P and Q are the evaluation-edge endpoints.
	P, Q likelihood.NodeRef
	// T[c] is the evaluation edge's length in class c.
	T []float64
}

// Build computes the full multi-class descriptor for the edge at p. The
// structural schedule is computed once (classes share topology and X
// bits); per-class branch lengths are then filled in.
func Build(t *tree.Tree, p *tree.Node, force bool) *Descriptor {
	return fillClasses(t, p, ForEdge(t, p, 0, force))
}

// BuildReuse computes the multi-class descriptor for the edge at p with
// the dirty-slot overlay of OrientReuse: beyond orienting the evaluation
// edge it refreshes every dirty slot anywhere in the tree, and clears
// the flags it refreshed. Executing the descriptor leaves the CLV arrays
// byte-identical to what Build(force=true) would have produced.
func BuildReuse(t *tree.Tree, p *tree.Node, dirty []bool) *Descriptor {
	return fillClasses(t, p, ForEdgeReuse(t, p, 0, dirty))
}

// fillClasses wraps a class-0 schedule into a full multi-class
// descriptor by re-reading per-class branch lengths from the tree.
func fillClasses(t *tree.Tree, p *tree.Node, base []likelihood.Step) *Descriptor {
	d := &Descriptor{
		P: Ref(t, p),
		Q: Ref(t, p.Back),
		T: make([]float64, t.BLClasses),
	}
	d.Steps = make([][]likelihood.Step, t.BLClasses)
	d.Steps[0] = base
	d.T[0] = p.Length(0)
	for c := 1; c < t.BLClasses; c++ {
		cs := make([]likelihood.Step, len(base))
		copy(cs, base)
		for i := range cs {
			// Re-read the class-c lengths from the tree: the step's Dst
			// identifies the inner vertex whose ring supplies them.
			v := t.HalfNodes[t.NTaxa()+3*int(cs[i].Dst)]
			// Locate the ring member holding the X bit (the one the step
			// computed); its two siblings carry the child branches.
			x := tree.XNode(v)
			cs[i].TA = x.Next.Length(c)
			cs[i].TB = x.Next.Next.Length(c)
		}
		d.Steps[c] = cs
		d.T[c] = p.Length(c)
	}
	return d
}

// WireSize returns the number of bytes Encode produces — the quantity the
// fork-join engine's Table I metering charges per descriptor broadcast.
func (d *Descriptor) WireSize() int {
	return d.WireSizeForClasses(len(d.T))
}

// WireSizeForClasses returns the encoded size this descriptor would have
// after replicating its single class across `classes` branch-length
// classes (the fork-join engine's padDescriptor). It lets a single-rank
// master meter the historically faithful byte count without building and
// encoding the padded copy.
func (d *Descriptor) WireSizeForClasses(classes int) int {
	size := 4 + 4 + 2*9 + 8*classes // header: classes, steps, P, Q, T
	if len(d.Steps) > 0 {
		size += len(d.Steps[0]) * (4 + 2*9)    // structure: dst + two refs
		size += classes * len(d.Steps[0]) * 16 // per-class lengths
	}
	return size
}

// Encode serializes the descriptor (little-endian, structure shared across
// classes, lengths per class).
func (d *Descriptor) Encode() []byte {
	buf := make([]byte, 0, d.WireSize())
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	put64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	putRef := func(r likelihood.NodeRef) {
		if r.Tip {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		put64(uint64(uint32(r.Idx)))
	}
	put32(uint32(len(d.Steps)))
	n := 0
	if len(d.Steps) > 0 {
		n = len(d.Steps[0])
	}
	put32(uint32(n))
	putRef(d.P)
	putRef(d.Q)
	for _, t := range d.T {
		put64(math.Float64bits(t))
	}
	if n > 0 {
		for _, s := range d.Steps[0] {
			put32(uint32(s.Dst))
			putRef(s.A)
			putRef(s.B)
		}
		for _, cs := range d.Steps {
			for _, s := range cs {
				put64(math.Float64bits(s.TA))
				put64(math.Float64bits(s.TB))
			}
		}
	}
	return buf
}

// Decode reverses Encode.
func Decode(buf []byte) (*Descriptor, error) {
	pos := 0
	get32 := func() (uint32, error) {
		if pos+4 > len(buf) {
			return 0, fmt.Errorf("traversal: truncated descriptor")
		}
		v := binary.LittleEndian.Uint32(buf[pos:])
		pos += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if pos+8 > len(buf) {
			return 0, fmt.Errorf("traversal: truncated descriptor")
		}
		v := binary.LittleEndian.Uint64(buf[pos:])
		pos += 8
		return v, nil
	}
	getRef := func() (likelihood.NodeRef, error) {
		if pos+1 > len(buf) {
			return likelihood.NodeRef{}, fmt.Errorf("traversal: truncated descriptor")
		}
		tip := buf[pos] == 1
		pos++
		v, err := get64()
		if err != nil {
			return likelihood.NodeRef{}, err
		}
		return likelihood.NodeRef{Tip: tip, Idx: int32(uint32(v))}, nil
	}
	nClasses, err := get32()
	if err != nil {
		return nil, err
	}
	nSteps, err := get32()
	if err != nil {
		return nil, err
	}
	if nClasses > 1<<20 || nSteps > 1<<24 {
		return nil, fmt.Errorf("traversal: implausible descriptor header (%d classes, %d steps)", nClasses, nSteps)
	}
	d := &Descriptor{T: make([]float64, nClasses), Steps: make([][]likelihood.Step, nClasses)}
	if d.P, err = getRef(); err != nil {
		return nil, err
	}
	if d.Q, err = getRef(); err != nil {
		return nil, err
	}
	for c := range d.T {
		v, err := get64()
		if err != nil {
			return nil, err
		}
		d.T[c] = math.Float64frombits(v)
	}
	structure := make([]likelihood.Step, nSteps)
	for i := range structure {
		dst, err := get32()
		if err != nil {
			return nil, err
		}
		structure[i].Dst = int32(dst)
		if structure[i].A, err = getRef(); err != nil {
			return nil, err
		}
		if structure[i].B, err = getRef(); err != nil {
			return nil, err
		}
	}
	for c := 0; c < int(nClasses); c++ {
		cs := make([]likelihood.Step, nSteps)
		copy(cs, structure)
		for i := range cs {
			ta, err := get64()
			if err != nil {
				return nil, err
			}
			tb, err := get64()
			if err != nil {
				return nil, err
			}
			cs[i].TA = math.Float64frombits(ta)
			cs[i].TB = math.Float64frombits(tb)
		}
		d.Steps[c] = cs
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("traversal: %d trailing bytes in descriptor", len(buf)-pos)
	}
	return d, nil
}
