package traversal

import (
	"math/rand"
	"testing"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

func taxa(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	return out
}

func TestFullTraversalCoversAllInner(t *testing.T) {
	tr := tree.NewRandom(taxa(15), 1, rand.New(rand.NewSource(1)))
	steps := ForEdge(tr, tr.Tip(0), 0, true)
	if len(steps) != tr.NInner() {
		t.Fatalf("%d steps, want %d", len(steps), tr.NInner())
	}
	seen := map[int32]bool{}
	for _, s := range steps {
		if seen[s.Dst] {
			t.Fatalf("vertex %d computed twice", s.Dst)
		}
		seen[s.Dst] = true
	}
}

func TestTraversalPostOrder(t *testing.T) {
	// Every inner operand of a step must have been computed earlier.
	tr := tree.NewRandom(taxa(20), 1, rand.New(rand.NewSource(2)))
	steps := ForEdge(tr, tr.InnerRing(3), 0, true)
	done := map[int32]bool{}
	for i, s := range steps {
		for _, op := range []likelihood.NodeRef{s.A, s.B} {
			if !op.Tip && !done[op.Idx] {
				t.Fatalf("step %d consumes uncomputed CLV %d", i, op.Idx)
			}
		}
		done[s.Dst] = true
	}
}

func TestPartialTraversalEmptyWhenOriented(t *testing.T) {
	tr := tree.NewRandom(taxa(10), 1, rand.New(rand.NewSource(3)))
	p := tr.Tip(0)
	ForEdge(tr, p, 0, true)
	// Second call without force: everything already oriented.
	steps := ForEdge(tr, p, 0, false)
	if len(steps) != 0 {
		t.Fatalf("re-orientation produced %d steps, want 0", len(steps))
	}
}

func TestBuildMultiClassLengths(t *testing.T) {
	tr := tree.NewRandom(taxa(8), 3, rand.New(rand.NewSource(4)))
	for _, e := range tr.Edges() {
		for c := 0; c < 3; c++ {
			e.SetLength(c, 0.1*float64(c+1)+0.01*float64(e.ID))
		}
	}
	d := Build(tr, tr.Tip(2), true)
	if len(d.Steps) != 3 {
		t.Fatalf("%d classes", len(d.Steps))
	}
	if len(d.Steps[0]) != tr.NInner() {
		t.Fatalf("%d steps", len(d.Steps[0]))
	}
	for c := 1; c < 3; c++ {
		if len(d.Steps[c]) != len(d.Steps[0]) {
			t.Fatal("class schedules differ in length")
		}
		for i := range d.Steps[c] {
			if d.Steps[c][i].Dst != d.Steps[0][i].Dst {
				t.Fatal("class schedules differ in structure")
			}
			// Lengths must come from the right class: our construction
			// sets class lengths to distinct ranges.
			if d.Steps[c][i].TA == d.Steps[0][i].TA && d.Steps[c][i].TB == d.Steps[0][i].TB {
				t.Fatalf("class %d step %d has class-0 lengths", c, i)
			}
		}
		if d.T[c] == d.T[0] {
			t.Fatal("root edge lengths identical across classes")
		}
	}
}

func TestDescriptorEncodeDecode(t *testing.T) {
	tr := tree.NewRandom(taxa(12), 2, rand.New(rand.NewSource(5)))
	for _, e := range tr.Edges() {
		e.SetLength(0, 0.05+0.001*float64(e.ID))
		e.SetLength(1, 0.5+0.001*float64(e.ID))
	}
	d := Build(tr, tr.InnerRing(1), true)
	buf := d.Encode()
	if len(buf) != d.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), d.WireSize())
	}
	back, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.P != d.P || back.Q != d.Q {
		t.Fatal("edge refs changed")
	}
	if len(back.Steps) != len(d.Steps) || len(back.T) != len(d.T) {
		t.Fatal("shape changed")
	}
	for c := range d.Steps {
		if back.T[c] != d.T[c] {
			t.Fatal("root length changed")
		}
		for i := range d.Steps[c] {
			if back.Steps[c][i] != d.Steps[c][i] {
				t.Fatalf("step (%d,%d) changed: %+v vs %+v", c, i, back.Steps[c][i], d.Steps[c][i])
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr := tree.NewRandom(taxa(6), 1, rand.New(rand.NewSource(6)))
	d := Build(tr, tr.Tip(0), true)
	buf := d.Encode()
	if _, err := Decode(buf[:len(buf)-3]); err == nil {
		t.Error("truncated descriptor accepted")
	}
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty descriptor accepted")
	}
}

func TestWireSizeGrowsWithClasses(t *testing.T) {
	// The -M (per-partition branch lengths) descriptor must be
	// substantially larger — the effect Table I measures.
	tr1 := tree.NewRandom(taxa(52), 1, rand.New(rand.NewSource(7)))
	size1 := Build(tr1, tr1.Tip(0), true).WireSize()
	tr10 := tree.NewRandom(taxa(52), 10, rand.New(rand.NewSource(7)))
	size10 := Build(tr10, tr10.Tip(0), true).WireSize()
	if size10 < 4*size1 {
		t.Fatalf("10-class descriptor (%d B) not much larger than 1-class (%d B)", size10, size1)
	}
}
