// Package examl is a Go reproduction of ExaML (Exascale Maximum
// Likelihood) from "Novel Parallelization Schemes for Large-Scale
// Likelihood-based Phylogenetic Inference" (Stamatakis & Aberer, 2013).
//
// It provides maximum-likelihood phylogenetic tree inference under
// GTR+Γ / GTR+PSR models on partitioned DNA alignments, parallelized over
// an in-process message-passing runtime with either of the paper's two
// schemes:
//
//   - Decentralized (the paper's contribution): every rank runs a
//     consistent replica of the search and communicates only through two
//     Allreduce call sites.
//   - ForkJoin (the RAxML-Light comparator): a master steers the search
//     and broadcasts traversal descriptors and parameter arrays to
//     workers before every parallel region.
//
// Both engines execute the identical search algorithm, so results agree
// bit-for-bit at equal rank counts; what differs — and what the paper
// measures — is the communication volume, which every run meters and
// reports.
//
// Quick start:
//
//	d, _ := examl.Simulate(16, 4, 500, 42)
//	res, _ := examl.Infer(d, examl.Config{Ranks: 4})
//	fmt.Println(res.LogLikelihood, res.Tree)
package examl

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/decentral"
	"repro/internal/distrib"
	"repro/internal/enginecore"
	"repro/internal/forkjoin"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/msa"
	"repro/internal/search"
	"repro/internal/seqgen"
	"repro/internal/telemetry"
	"repro/internal/tree"
)

// Scheme selects the parallelization scheme.
type Scheme int

// Available schemes.
const (
	// Decentralized is the ExaML scheme (default).
	Decentralized Scheme = iota
	// ForkJoin is the RAxML-Light comparator scheme.
	ForkJoin
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s == ForkJoin {
		return "fork-join"
	}
	return "decentralized"
}

// RateModel selects the among-site rate heterogeneity model.
type RateModel int

// Available rate models.
const (
	// GAMMA is the 4-category discrete-Γ model (default).
	GAMMA RateModel = iota
	// PSR is the per-site rate model (4× lower memory).
	PSR
)

// String implements fmt.Stringer.
func (m RateModel) String() string {
	if m == PSR {
		return "PSR"
	}
	return "GAMMA"
}

// SubstitutionModel names the nucleotide substitution model. All are
// special cases of GTR; they differ in which exchangeabilities the
// optimizer may move and how base frequencies are set.
type SubstitutionModel int

// Available substitution models.
const (
	// GTRModel is the general time-reversible model (default, the
	// paper's setting): 5 free rates, empirical frequencies.
	GTRModel SubstitutionModel = iota
	// JCModel is Jukes–Cantor: no free rates, uniform frequencies.
	JCModel
	// K80Model is Kimura 2-parameter: free κ, uniform frequencies.
	K80Model
	// HKYModel is HKY85: free κ, empirical frequencies.
	HKYModel
)

// String implements fmt.Stringer.
func (m SubstitutionModel) String() string {
	return substOf(m).String()
}

func substOf(m SubstitutionModel) model.SubstModel {
	switch m {
	case JCModel:
		return model.JC
	case K80Model:
		return model.K80
	case HKYModel:
		return model.HKY
	}
	return model.GTR
}

// Distribution selects the data-distribution strategy.
type Distribution int

// Available distributions.
const (
	// Cyclic deals site patterns round-robin (default).
	Cyclic Distribution = iota
	// MPS assigns whole partitions monolithically (the paper's -Q).
	MPS
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	if d == MPS {
		return "MPS"
	}
	return "cyclic"
}

// Dataset is a compressed, partitioned alignment ready for inference.
type Dataset struct {
	d *msa.Dataset
}

// NTaxa returns the number of sequences.
func (d *Dataset) NTaxa() int { return d.d.NTaxa() }

// NPartitions returns the number of partitions.
func (d *Dataset) NPartitions() int { return d.d.NPartitions() }

// Patterns returns the total number of unique site patterns — the
// quantity that governs memory and parallel scalability.
func (d *Dataset) Patterns() int { return d.d.TotalPatterns() }

// Sites returns the total number of alignment columns.
func (d *Dataset) Sites() int { return d.d.TotalSites() }

// TaxonNames returns the taxon labels in dataset order.
func (d *Dataset) TaxonNames() []string { return append([]string(nil), d.d.Names...) }

// LoadPhylip reads a relaxed PHYLIP alignment and an optional RAxML-style
// partition scheme ("DNA, gene1 = 1-1000" lines; empty = one partition).
func LoadPhylip(r io.Reader, partitionScheme string) (*Dataset, error) {
	a, err := msa.ParsePhylip(r)
	if err != nil {
		return nil, err
	}
	var parts []msa.Partition
	if strings.TrimSpace(partitionScheme) != "" {
		parts, err = msa.ParsePartitionFile(partitionScheme, a.NSites())
		if err != nil {
			return nil, err
		}
	}
	d, err := msa.Compress(a, parts)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// LoadBinary reads the compact binary alignment format.
func LoadBinary(r io.Reader) (*Dataset, error) {
	d, err := msa.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// SaveBinary writes the dataset in the compact binary alignment format.
func (d *Dataset) SaveBinary(w io.Writer) error { return msa.WriteBinary(w, d.d) }

// Simulate generates a partitioned dataset with the paper's gene recipe:
// nPartitions genes of geneLen sites each over nTaxa taxa, with per-gene
// evolutionary heterogeneity.
func Simulate(nTaxa, nPartitions, geneLen int, seed int64) (*Dataset, error) {
	res, err := seqgen.Generate(seqgen.PartitionedGenes(nTaxa, nPartitions, geneLen, seed))
	if err != nil {
		return nil, err
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// SimulateUnpartitioned generates a single-partition dataset with the
// paper's large-alignment recipe (150 taxa × 20 M bp at full scale).
func SimulateUnpartitioned(nTaxa, nSites int, seed int64) (*Dataset, error) {
	res, err := seqgen.Generate(seqgen.LargeUnpartitioned(nTaxa, nSites, seed))
	if err != nil {
		return nil, err
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// Config controls an inference run. The zero value is a sensible default:
// decentralized scheme, 1 rank, GTR+Γ, cyclic distribution.
type Config struct {
	// Scheme selects the parallelization scheme.
	Scheme Scheme
	// Ranks is the number of simulated MPI ranks (default 1).
	Ranks int
	// Threads is the intra-rank worker count per rank — the
	// shared-memory axis of the paper's §V hybrid MPI/PThreads scheme.
	// ≤ 1 runs every kernel serially. Results are bit-identical at
	// every thread count (docs/DETERMINISM.md).
	Threads int
	// HybridRanksPerNode, when > 1, groups ranks into nodes and routes
	// the Allreduce call sites through the hierarchical (intra-node
	// first) algorithm — the cross-rank half of the §V hybrid scheme.
	// Decentralized only; composes with Threads.
	HybridRanksPerNode int
	// RateModel selects Γ or PSR.
	RateModel RateModel
	// Substitution selects GTR (default) or a constrained sub-model.
	Substitution SubstitutionModel
	// PerPartitionBranchLengths enables the paper's -M option.
	PerPartitionBranchLengths bool
	// Distribution selects cyclic or MPS (-Q) data distribution.
	Distribution Distribution
	// Seed drives the random starting tree.
	Seed int64
	// StartTree overrides the random start with a Newick tree.
	StartTree string
	// ParsimonyStartTree builds the starting tree by randomized
	// stepwise-addition parsimony (the Parsimonator recipe) instead of a
	// random topology.
	ParsimonyStartTree bool
	// MaxIterations caps the outer search loop (default 50).
	MaxIterations int
	// Epsilon is the convergence threshold in log-likelihood units
	// (default 0.1).
	Epsilon float64
	// SPRRadius is the rearrangement radius (default 5).
	SPRRadius int
	// SkipTopology restricts the run to model + branch-length
	// optimization on the start tree (like RAxML -f e).
	SkipTopology bool
	// CheckpointPath, when set, writes a restartable checkpoint there
	// after every search iteration.
	CheckpointPath string
	// RestorePath, when set, resumes from a checkpoint file.
	RestorePath string
	// Telemetry enables the out-of-band instrumentation layer: per-rank
	// kernel/collective span timing, derived load-imbalance and
	// comm-fraction metrics, and search-progress counters, returned in
	// Result.Telemetry. Timing is observational only — results stay
	// bit-identical to an uninstrumented run (docs/OBSERVABILITY.md).
	Telemetry bool
	// TraceWriter, when non-nil, additionally streams every recorded
	// span as a JSONL event (implies Telemetry). The writer is shared by
	// all ranks; writes are serialized internally.
	TraceWriter io.Writer
	// TraceLabel, when non-empty, namespaces every JSONL telemetry event
	// of this run with a `"job"` field. The inference service
	// (cmd/examld) sets it to the job ID so concurrent jobs never
	// interleave unattributable events into one stream; one-shot runs
	// leave it empty.
	TraceLabel string
	// OnProgress, when set, is invoked after every completed outer
	// search iteration with the 1-based iteration number and the current
	// log likelihood. Under the in-process transport every rank replica
	// calls it (like the checkpoint hook); in network mode each process
	// calls it exactly once per iteration. Observational only — it must
	// not mutate search state.
	OnProgress func(iteration int, lnL float64)
	// DisableRepeats turns off subtree site-repeat compression in the
	// likelihood kernels (docs/PERFORMANCE.md). Ablation switch only:
	// results are bit-identical with compression on or off.
	DisableRepeats bool
	// RepeatsMaxMem caps the per-rank memory (bytes) the repeat class
	// tables may occupy; 0 means unbounded. Nodes whose table would
	// exceed the cap fall back to plain per-site computation.
	RepeatsMaxMem int64
	// DisableBatchedGradients turns off the batched all-branch gradient
	// path in branch-length smoothing and falls back to the per-branch
	// Newton oracle. Ablation switch only: final trees and likelihoods
	// are byte-identical either way, but the batched path pays one wide
	// Allreduce per smoothing sweep where the oracle pays one narrow
	// Allreduce per branch per Newton iteration (docs/DETERMINISM.md §7,
	// docs/PERFORMANCE.md).
	DisableBatchedGradients bool
	// DisableSoA switches the likelihood kernels from the default SoA
	// (structure-of-arrays) CLV layout back to AoS (docs/PERFORMANCE.md
	// §6). Ablation switch only: results are bit-identical either way.
	DisableSoA bool
	// BatchSites sets the fused small-partition batching threshold in
	// patterns (kernels below it share one pool dispatch per likelihood
	// operation). 0 keeps the default (enginecore.DefaultBatchSites);
	// negative disables batching. Ablation switch only: results are
	// bit-identical either way.
	BatchSites int
}

// DefaultBatchSites re-exports the engines' default fused-batching
// threshold (patterns) for flag wiring and documentation.
const DefaultBatchSites = enginecore.DefaultBatchSites

// CommReport is the per-class communication accounting of a run — the
// data behind the paper's Table I.
type CommReport struct {
	// Classes lists per-class statistics, largest byte volume first.
	Classes []CommClassStats
	// TotalOps, TotalBytes, and TotalRegions aggregate all classes.
	TotalOps, TotalBytes, TotalRegions int64
}

// CommClassStats is one class's row.
type CommClassStats struct {
	// Name is the traffic class ("traversal-descriptor", …).
	Name string
	// Ops is the number of collective operations.
	Ops int64
	// Bytes is the payload volume (counted once per logical collective).
	Bytes int64
	// Regions is the number of parallel regions of this class.
	Regions int64
	// ByteShare is Bytes / TotalBytes.
	ByteShare float64
}

func makeCommReport(s mpi.Snapshot) CommReport {
	rep := CommReport{
		TotalOps:     s.TotalOps(),
		TotalBytes:   s.TotalBytes(),
		TotalRegions: s.TotalRegions(),
	}
	for c := mpi.CommClass(0); c < mpi.NumCommClasses; c++ {
		if s.Ops[c] == 0 && s.Bytes[c] == 0 && s.Regions[c] == 0 {
			continue
		}
		share := 0.0
		if rep.TotalBytes > 0 {
			share = float64(s.Bytes[c]) / float64(rep.TotalBytes)
		}
		rep.Classes = append(rep.Classes, CommClassStats{
			Name:      c.String(),
			Ops:       s.Ops[c],
			Bytes:     s.Bytes[c],
			Regions:   s.Regions[c],
			ByteShare: share,
		})
	}
	for i := 1; i < len(rep.Classes); i++ {
		for j := i; j > 0 && rep.Classes[j-1].Bytes < rep.Classes[j].Bytes; j-- {
			rep.Classes[j-1], rep.Classes[j] = rep.Classes[j], rep.Classes[j-1]
		}
	}
	return rep
}

// Result is the outcome of an inference.
type Result struct {
	// Tree is the final topology in Newick format.
	Tree string
	// LogLikelihood is the final score.
	LogLikelihood float64
	// PerPartitionLogLikelihood is the per-partition breakdown.
	PerPartitionLogLikelihood []float64
	// Iterations is the number of outer search iterations executed.
	Iterations int
	// Comm is the communication accounting.
	Comm CommReport
	// WallSeconds is the measured wall-clock time.
	WallSeconds float64
	// Ranks echoes the rank count.
	Ranks int
	// Telemetry is the end-of-run instrumentation report; nil unless
	// Config.Telemetry (or Config.TraceWriter) was set.
	Telemetry *telemetry.Report

	trace cluster.Trace
}

// Projection is a modeled execution time at cluster scale.
type Projection struct {
	// Ranks and Nodes are the projected scale.
	Ranks, Nodes int
	// Seconds is the modeled total time.
	Seconds float64
	// ComputeSeconds and CommSeconds are the breakdown.
	ComputeSeconds, CommSeconds float64
	// Swapping reports predicted memory thrashing.
	Swapping bool
}

// Project models this run's execution time at the given rank count on the
// paper's cluster (48-core nodes, InfiniBand) — the substitution for the
// original 50-node testbed.
func (r *Result) Project(ranks int) (Projection, error) {
	p, err := cluster.Project(r.trace, ranks, cluster.MagnyCours())
	if err != nil {
		return Projection{}, err
	}
	return Projection{
		Ranks:          p.Ranks,
		Nodes:          p.Nodes,
		Seconds:        p.TotalSec,
		ComputeSeconds: p.ComputeSec,
		CommSeconds:    p.CommSec,
		Swapping:       p.Swapping,
	}, nil
}

// searchConfig translates the public Config into the internal search
// configuration, wiring checkpoint restore and per-iteration writes.
func searchConfig(cfg Config) (search.Config, error) {
	het := model.Gamma
	if cfg.RateModel == PSR {
		het = model.PSR
	}
	scfg := search.Config{
		Het:                     het,
		Subst:                   substOf(cfg.Substitution),
		PerPartitionBranches:    cfg.PerPartitionBranchLengths,
		Epsilon:                 cfg.Epsilon,
		SPRRadius:               cfg.SPRRadius,
		MaxIterations:           cfg.MaxIterations,
		Seed:                    cfg.Seed,
		StartTree:               cfg.StartTree,
		ParsimonyStart:          cfg.ParsimonyStartTree,
		SkipTopology:            cfg.SkipTopology,
		DisableBatchedGradients: cfg.DisableBatchedGradients,
	}
	if cfg.RestorePath != "" {
		f, err := os.Open(cfg.RestorePath)
		if err != nil {
			return scfg, fmt.Errorf("examl: open checkpoint: %w", err)
		}
		state, err := checkpoint.Read(f)
		f.Close()
		if err != nil {
			return scfg, err
		}
		scfg.Restore = state
	}
	if cfg.CheckpointPath != "" {
		var mu sync.Mutex
		scfg.OnIteration = func(s *search.Searcher, iter int, lnL float64) {
			// Every replica calls the hook with identical state; writes
			// are serialized and idempotent.
			mu.Lock()
			defer mu.Unlock()
			writeCheckpoint(cfg.CheckpointPath, s.Snapshot(iter))
		}
	}
	if cfg.OnProgress != nil {
		prev := scfg.OnIteration
		scfg.OnIteration = func(s *search.Searcher, iter int, lnL float64) {
			if prev != nil {
				prev(s, iter, lnL)
			}
			cfg.OnProgress(iter, lnL)
		}
	}
	return scfg, nil
}

func strategyOf(cfg Config) distrib.Strategy {
	if cfg.Distribution == MPS {
		return distrib.MPS
	}
	return distrib.Cyclic
}

// Infer runs a maximum-likelihood tree search on the dataset.
func Infer(d *Dataset, cfg Config) (*Result, error) {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 1
	}
	strategy := strategyOf(cfg)
	scfg, err := searchConfig(cfg)
	if err != nil {
		return nil, err
	}

	var collector *telemetry.Collector
	if cfg.Telemetry || cfg.TraceWriter != nil {
		collector = telemetry.NewCollector(cfg.Ranks, int(mpi.NumCommClasses), cfg.TraceWriter)
		collector.SetJob(cfg.TraceLabel)
	}

	var (
		res     *search.Result
		comm    mpi.Snapshot
		wall    float64
		wallDur time.Duration
		trace   cluster.Trace
	)
	switch cfg.Scheme {
	case Decentralized:
		var stats *decentral.RunStats
		res, stats, err = decentral.Run(d.d, decentral.RunConfig{
			Search:             scfg,
			Ranks:              cfg.Ranks,
			Strategy:           strategy,
			HybridRanksPerNode: cfg.HybridRanksPerNode,
			Threads:            cfg.Threads,
			Telemetry:          collector,
			DisableRepeats:     cfg.DisableRepeats,
			RepeatsMaxMem:      cfg.RepeatsMaxMem,
			DisableSoA:         cfg.DisableSoA,
			BatchSites:         cfg.BatchSites,
		})
		if err == nil {
			comm, wall, wallDur = stats.Comm, stats.Wall.Seconds(), stats.Wall
			trace = cluster.Trace{
				Comm:           stats.Comm,
				MaxRankColumns: stats.MaxRankColumns,
				TotalColumns:   stats.TotalColumns,
				MeasuredRanks:  stats.Ranks,
				CLVBytesTotal:  stats.CLVBytesTotal,
			}
		}
	case ForkJoin:
		var stats *forkjoin.RunStats
		res, stats, err = forkjoin.Run(d.d, forkjoin.RunConfig{
			Search:         scfg,
			Ranks:          cfg.Ranks,
			Strategy:       strategy,
			Threads:        cfg.Threads,
			Telemetry:      collector,
			DisableRepeats: cfg.DisableRepeats,
			RepeatsMaxMem:  cfg.RepeatsMaxMem,
			DisableSoA:     cfg.DisableSoA,
			BatchSites:     cfg.BatchSites,
		})
		if err == nil {
			comm, wall, wallDur = stats.Comm, stats.Wall.Seconds(), stats.Wall
			trace = cluster.Trace{
				Comm:           stats.Comm,
				MaxRankColumns: stats.MaxRankColumns,
				TotalColumns:   stats.TotalColumns,
				MeasuredRanks:  stats.Ranks,
				CLVBytesTotal:  stats.CLVBytesTotal,
			}
		}
	default:
		return nil, fmt.Errorf("examl: unknown scheme %d", cfg.Scheme)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Tree:                      res.Tree.Newick(),
		LogLikelihood:             res.LnL,
		PerPartitionLogLikelihood: res.PerPartitionLnL,
		Iterations:                res.Iterations,
		Comm:                      makeCommReport(comm),
		WallSeconds:               wall,
		Ranks:                     cfg.Ranks,
		Telemetry:                 finalizeTelemetry(collector, wallDur, cfg.Threads, comm),
		trace:                     trace,
	}, nil
}

// finalizeTelemetry joins the span collector with the byte/op meters into
// the end-of-run report. Returns nil when telemetry was disabled.
func finalizeTelemetry(c *telemetry.Collector, wall time.Duration, threads int, comm mpi.Snapshot) *telemetry.Report {
	if c == nil {
		return nil
	}
	names := make([]string, mpi.NumCommClasses)
	for cl := mpi.CommClass(0); cl < mpi.NumCommClasses; cl++ {
		names[cl] = cl.String()
	}
	if threads < 1 {
		threads = 1
	}
	rep := c.Finalize(wall, threads, names, comm.Ops[:], comm.Bytes[:])
	// Mirror the run summary onto the process metrics registry so a live
	// /metrics scrape (-metrics-addr, or the examld daemon) sees it.
	rep.Publish(metrics.Default())
	return rep
}

// writeCheckpoint writes atomically via a temp file + rename.
func writeCheckpoint(path string, state *checkpoint.State) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := checkpoint.Write(f, state); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
}

// RobinsonFoulds computes the Robinson–Foulds distance between two Newick
// trees over the same taxa — the standard topology-comparison metric.
func RobinsonFoulds(newickA, newickB string) (int, error) {
	a, err := tree.ParseNewick(newickA, 1)
	if err != nil {
		return 0, err
	}
	b, err := tree.ParseNewick(newickB, 1)
	if err != nil {
		return 0, err
	}
	return tree.RobinsonFoulds(a, b)
}
