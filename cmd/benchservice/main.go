// Command benchservice drives the inference service end to end.
//
// Default mode is the throughput benchmark behind `make bench-service`:
// start an in-process service with a warm worker pool (workers are
// re-execed copies of this binary), submit a stream of small jobs over
// the HTTP API with bounded client concurrency, and write jobs/sec and
// latency percentiles to BENCH_service.json.
//
// -smoke runs the acceptance drill behind `make smoke-service`: one
// job on a 2-rank loopback pool with an injected rank death, asserting
// the job migrates onto a spare worker and still returns a result
// bit-identical to a one-shot run (and to the examl CLI when -examl
// points at the binary).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	examl "repro"
	"repro/internal/msa"
	"repro/internal/seqgen"
	"repro/internal/service"
	"repro/internal/service/client"
)

// The smoke recipe mirrors the repo's network tests: a tiny dataset
// that still exercises multi-partition traversal, 3 iterations, 2
// ranks.
const (
	smokeTaxa     = 10
	smokeParts    = 2
	smokeGeneLen  = 60
	smokeDataSeed = 33
	smokeSeed     = 7
	smokeIters    = 3
)

func main() {
	var (
		worker      = flag.Bool("worker", false, "run as a pool worker (pool address is the positional argument)")
		smoke       = flag.Bool("smoke", false, "run the smoke drill instead of the benchmark")
		examlPath   = flag.String("examl", "", "smoke: also cross-check against this examl CLI binary")
		out         = flag.String("out", "BENCH_service.json", "benchmark output file")
		jobs        = flag.Int("jobs", 32, "benchmark: total jobs to run")
		concurrency = flag.Int("concurrency", 8, "benchmark: concurrent submitters")
		workers     = flag.Int("workers", 4, "warm worker pool size")
		ranks       = flag.Int("ranks", 1, "benchmark: ranks per job")
		taxa        = flag.Int("taxa", 8, "benchmark: taxa per job dataset")
		partitions  = flag.Int("partitions", 1, "benchmark: partitions per job dataset")
		geneLen     = flag.Int("genelen", 40, "benchmark: gene length per job dataset")
		iters       = flag.Int("iters", 2, "benchmark: search iterations per job")
	)
	flag.Parse()

	if *worker {
		if flag.NArg() < 1 {
			log.Fatal("benchservice -worker needs the pool address as an argument")
		}
		if err := service.RunWorker(flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *smoke {
		if err := runSmoke(*examlPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runBench(*out, *jobs, *concurrency, *workers, *ranks, *taxa, *partitions, *geneLen, *iters); err != nil {
		log.Fatal(err)
	}
}

// harness is a running service plus an API client against it — the
// same client.Client phyrun's service backend uses, so the benchmark
// measures the real wire path.
type harness struct {
	srv *service.Server
	ln  net.Listener
	cl  *client.Client
}

func startHarness(workers int, hbInterval, hbTimeout time.Duration, logf func(string, ...any)) (*harness, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	srv, err := service.New(service.Options{
		Workers:           workers,
		WorkerArgv:        []string{self, "-worker"},
		HeartbeatInterval: hbInterval,
		HeartbeatTimeout:  hbTimeout,
		Logf:              logf,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	go http.Serve(ln, srv.Handler())
	if err := srv.WaitWorkers(workers, 30*time.Second); err != nil {
		ln.Close()
		srv.Close()
		return nil, err
	}
	return &harness{srv: srv, ln: ln, cl: client.New("http://" + ln.Addr().String())}, nil
}

func (h *harness) close() {
	h.ln.Close()
	h.srv.Close()
}

// runJob submits one job and follows its long-polled event stream to a
// terminal state.
func (h *harness) runJob(spec client.JobSpec, timeout time.Duration) (*client.JobResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := h.cl.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	return h.cl.Wait(ctx, st.ID, nil)
}

func runBench(out string, jobs, concurrency, workers, ranks, taxa, partitions, geneLen, iters int) error {
	h, err := startHarness(workers, 100*time.Millisecond, 2*time.Second, nil)
	if err != nil {
		return err
	}
	defer h.close()
	log.Printf("bench-service: pool of %d workers up, running %d jobs (%d ranks each, concurrency %d)",
		workers, jobs, ranks, concurrency)

	spec := func(i int) client.JobSpec {
		return client.JobSpec{
			Simulate: &client.SimulateSpec{
				Taxa: taxa, Partitions: partitions, GeneLength: geneLen,
				// Vary the dataset per job so the benchmark measures real
				// inference, not a warmed microarchitectural state.
				Seed: int64(1000 + i),
			},
			Ranks:         ranks,
			Seed:          int64(i + 1),
			MaxIterations: iters,
		}
	}

	// Warmup: one job settles the pool (binary paging, first GC).
	if _, err := h.runJob(spec(-1), 2*time.Minute); err != nil {
		return fmt.Errorf("warmup job: %w", err)
	}

	latencies := make([]time.Duration, jobs)
	errs := make([]error, jobs)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				_, err := h.runJob(spec(i), 5*time.Minute)
				latencies[i] = time.Since(t0)
				errs[i] = err
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	failures := 0
	var ok []time.Duration
	for i, err := range errs {
		if err != nil {
			failures++
			log.Printf("bench-service: job %d: %v", i, err)
			continue
		}
		ok = append(ok, latencies[i])
	}
	if len(ok) == 0 {
		return fmt.Errorf("every benchmark job failed")
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	pct := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(ok)))) - 1
		if idx < 0 {
			idx = 0
		}
		return float64(ok[idx].Microseconds()) / 1000
	}
	var sum time.Duration
	for _, d := range ok {
		sum += d
	}

	report := map[string]any{
		"benchmark": "service-throughput",
		"config": map[string]any{
			"workers":        workers,
			"ranks_per_job":  ranks,
			"concurrency":    concurrency,
			"jobs":           jobs,
			"taxa":           taxa,
			"partitions":     partitions,
			"gene_length":    geneLen,
			"max_iterations": iters,
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"num_cpu":        runtime.NumCPU(),
			"go_version":     runtime.Version(),
		},
		"jobs_per_sec": float64(len(ok)) / wall.Seconds(),
		"latency_ms": map[string]any{
			"p50":  pct(0.50),
			"p90":  pct(0.90),
			"p99":  pct(0.99),
			"max":  float64(ok[len(ok)-1].Microseconds()) / 1000,
			"mean": float64(sum.Microseconds()) / float64(len(ok)) / 1000,
		},
		"wall_seconds": wall.Seconds(),
		"failures":     failures,
	}
	payload, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("bench-service: %d jobs in %.2fs → %.2f jobs/sec (p50 %.1fms, p99 %.1fms, %d failures) → %s",
		len(ok), wall.Seconds(), report["jobs_per_sec"], pct(0.50), pct(0.99), failures, out)
	return nil
}

// runSmoke is the acceptance drill: a warm 2-rank pool plus one spare,
// an injected rank death mid-search, and three bit-identity checks —
// service result vs in-process run, vs the examl CLI's one-shot tree
// file (when -examl is given), and a post-migration job reusing the
// healed pool.
func runSmoke(examlPath string) error {
	// Reference: the identical search through the in-process engine —
	// the same code path `examl -np 2` runs.
	d, err := examl.Simulate(smokeTaxa, smokeParts, smokeGeneLen, smokeDataSeed)
	if err != nil {
		return err
	}
	ref, err := examl.Infer(d, examl.Config{Ranks: 2, Seed: smokeSeed, MaxIterations: smokeIters})
	if err != nil {
		return err
	}
	refBits := fmt.Sprintf("%016x", math.Float64bits(ref.LogLikelihood))
	log.Printf("smoke-service: reference 2-rank run: lnl %.6f, bits %s", ref.LogLikelihood, refBits)

	if examlPath != "" {
		if err := smokeCLICrossCheck(examlPath, ref.Tree); err != nil {
			return err
		}
		log.Printf("smoke-service: examl CLI one-shot tree matches byte-for-byte")
	}

	// Tight failure-detection settings: the drill should migrate in
	// about a second, not the LAN-conservative defaults.
	h, err := startHarness(3, 50*time.Millisecond, time.Second, log.Printf)
	if err != nil {
		return err
	}
	defer h.close()

	spec := client.JobSpec{
		Simulate: &client.SimulateSpec{
			Taxa: smokeTaxa, Partitions: smokeParts,
			GeneLength: smokeGeneLen, Seed: smokeDataSeed,
		},
		Ranks:         2,
		Seed:          smokeSeed,
		MaxIterations: smokeIters,
		InjectFailure: &client.InjectSpec{Rank: 1, AfterIteration: 1},
	}
	res, err := h.runJob(spec, 2*time.Minute)
	if err != nil {
		return fmt.Errorf("smoke job: %w", err)
	}
	if !res.Recovered {
		return fmt.Errorf("smoke job finished without recovering — the injected death did not happen?")
	}
	if res.Ranks != 2 {
		return fmt.Errorf("smoke job finished on %d ranks, want the migrated full world of 2", res.Ranks)
	}
	if res.LnLBits != refBits {
		return fmt.Errorf("smoke job lnl bits %s differ from the one-shot run's %s", res.LnLBits, refBits)
	}
	if res.Tree != ref.Tree {
		return fmt.Errorf("smoke job tree differs from the one-shot run")
	}
	log.Printf("smoke-service: injected rank death survived; result bit-identical after migration (resumed from iteration %d)", res.ResumedIteration)

	// The healed pool must serve the next job as new: same submission
	// without the failure drill, same bits.
	spec.InjectFailure = nil
	res2, err := h.runJob(spec, 2*time.Minute)
	if err != nil {
		return fmt.Errorf("post-migration job: %w", err)
	}
	if res2.LnLBits != refBits || res2.Tree != ref.Tree || res2.Recovered {
		return fmt.Errorf("post-migration job diverged (recovered=%v bits=%s)", res2.Recovered, res2.LnLBits)
	}
	log.Printf("smoke-service: healed pool served a clean job with identical bits — OK")
	return nil
}

// smokeCLICrossCheck materializes the smoke dataset as files and runs
// the actual examl binary one-shot, comparing its .bestTree.nwk
// byte-for-byte against the reference tree (Newick branch lengths use
// the shortest round-tripping form, so byte equality is bit equality).
func smokeCLICrossCheck(examlPath, refTree string) error {
	tmp, err := os.MkdirTemp("", "smoke-service-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	gen, err := seqgen.Generate(seqgen.PartitionedGenes(smokeTaxa, smokeParts, smokeGeneLen, smokeDataSeed))
	if err != nil {
		return err
	}
	phy, err := os.Create(filepath.Join(tmp, "smoke.phy"))
	if err != nil {
		return err
	}
	if err := msa.WritePhylip(phy, gen.Alignment); err != nil {
		phy.Close()
		return err
	}
	if err := phy.Close(); err != nil {
		return err
	}
	parts := filepath.Join(tmp, "smoke.parts.txt")
	if err := os.WriteFile(parts, []byte(msa.FormatPartitionFile(gen.Partitions)), 0o644); err != nil {
		return err
	}

	cmd := exec.Command(examlPath,
		"-s", filepath.Join(tmp, "smoke.phy"), "-q", parts,
		"-np", "2", "-p", fmt.Sprint(smokeSeed), "-iter", fmt.Sprint(smokeIters),
		"-n", filepath.Join(tmp, "oneshot"))
	if outp, err := cmd.CombinedOutput(); err != nil {
		return fmt.Errorf("examl CLI one-shot run: %v\n%s", err, outp)
	}
	tree, err := os.ReadFile(filepath.Join(tmp, "oneshot.bestTree.nwk"))
	if err != nil {
		return err
	}
	if string(tree) != refTree+"\n" {
		return fmt.Errorf("examl CLI tree differs from the in-process reference")
	}
	return nil
}
