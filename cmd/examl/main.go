// Command examl performs maximum-likelihood phylogenetic inference with
// the de-centralized parallelization scheme (the paper's contribution).
// Flags mirror the original ExaML where meaningful:
//
//	-s  alignment (relaxed PHYLIP, or binary with -b)
//	-q  partition-scheme file (RAxML format)
//	-m  GAMMA or PSR rate heterogeneity
//	-Q  monolithic per-partition data distribution (MPS)
//	-M  individual per-partition branch lengths
//	-np number of simulated MPI ranks
//	-T  worker threads per rank (§V hybrid scheme; results are
//	    bit-identical at any thread count)
//	-ranks-per-node  hierarchical Allreduce node grouping (hybrid)
//	-t  starting tree (Newick file; random if absent)
//	-c  checkpoint file (written per iteration; use -r to restore)
//
// Observability (docs/OBSERVABILITY.md):
//
//	-stats            print the end-of-run telemetry report (kernel
//	                  spans, collective timing, load imbalance)
//	-stats-json FILE  write that report as JSON
//	-trace FILE       stream a JSONL span-event trace
//
// Example:
//
//	examl -s data.phy -q parts.txt -m GAMMA -np 8 -T 4 -stats -n run1
package main

import (
	"flag"
	"log"

	"repro"
	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("examl: ")
	var args cli.Args
	cli.Register(&args)
	flag.Parse()
	args.Scheme = examl.Decentralized
	res, err := cli.Run(args)
	if err != nil {
		log.Fatal(err)
	}
	cli.Report(args, res)
}
