// Command examl performs maximum-likelihood phylogenetic inference with
// the de-centralized parallelization scheme (the paper's contribution).
// Flags mirror the original ExaML where meaningful:
//
//	-s  alignment (relaxed PHYLIP, or binary with -b)
//	-q  partition-scheme file (RAxML format)
//	-m  GAMMA or PSR rate heterogeneity
//	-Q  monolithic per-partition data distribution (MPS)
//	-M  individual per-partition branch lengths
//	-np number of simulated MPI ranks
//	-T  worker threads per rank (§V hybrid scheme; results are
//	    bit-identical at any thread count)
//	-ranks-per-node  hierarchical Allreduce node grouping (hybrid)
//	-t  starting tree (Newick file; random if absent)
//	-c  checkpoint file (written per iteration; use -r to restore)
//
// Network transport (docs/NETWORKING.md) — ranks as OS processes over
// TCP instead of goroutines:
//
//	-net-launch       fork the whole world locally over loopback and wait
//	-net-rank N       run as rank N of a hand-launched world
//	-net-size S       world size in processes
//	-net-addr H:P     rendezvous address (rank 0 listens there)
//	-net-nonce X      shared run nonce (stale-worker rejection)
//	-net-recoveries R survivor-recovery budget after peer failures
//
// Observability (docs/OBSERVABILITY.md):
//
//	-stats            print the end-of-run telemetry report (kernel
//	                  spans, collective timing, load imbalance)
//	-stats-json FILE  write that report as JSON
//	-trace FILE       stream a JSONL span-event trace (merge multi-rank
//	                  traces with cmd/phytrace)
//	-metrics-addr A   serve Prometheus metrics at GET /metrics on A for
//	                  the duration of the run (net mode: rank 0 only)
//	-pprof            also mount /debug/pprof/ on the metrics listener
//
// Example:
//
//	examl -s data.phy -q parts.txt -m GAMMA -np 8 -T 4 -stats -n run1
package main

import (
	"flag"
	"log"

	"repro"
	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("examl: ")
	var args cli.Args
	cli.Register(&args)
	flag.Parse()
	args.Scheme = examl.Decentralized
	switch {
	case args.NetLaunch:
		if err := cli.Launch(args); err != nil {
			log.Fatal(err)
		}
	case args.NetRank >= 0:
		nr, err := cli.RunNet(args)
		if err != nil {
			log.Fatal(err)
		}
		cli.ReportNet(args, nr)
	default:
		res, err := cli.Run(args)
		if err != nil {
			log.Fatal(err)
		}
		cli.Report(args, res)
	}
}
