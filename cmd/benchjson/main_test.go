package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	rec, procs, ok := parseBenchLine(
		"BenchmarkKernelThreadsGamma/T=4-16    100    123456 ns/op    500 flops/op    4.0 threads")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if rec.Name != "KernelThreadsGamma/T=4" {
		t.Fatalf("name = %q", rec.Name)
	}
	if procs != 16 {
		t.Fatalf("gomaxprocs suffix = %d, want 16", procs)
	}
	if rec.NsPerOp != 123456 || rec.Iterations != 100 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Metrics["threads"] != 4 {
		t.Fatalf("metrics = %v", rec.Metrics)
	}
	wantFlops := rec.Metrics["flops/op"] / rec.NsPerOp * 1e9
	if rec.FlopsPerSec != wantFlops {
		t.Fatalf("flops/s = %v, want %v", rec.FlopsPerSec, wantFlops)
	}
	if rec.BytesPerSec != 0 || rec.ArithmeticIntensity != 0 {
		t.Fatalf("roofline fields set without bytes/op: %+v", rec)
	}

	// A dashed sub-benchmark name without a numeric suffix keeps its
	// trailing element.
	rec, procs, ok = parseBenchLine("BenchmarkFoo/mode=fast-path    10    5 ns/op")
	if !ok || procs != 0 || rec.Name != "Foo/mode=fast-path" {
		t.Fatalf("rec = %+v procs = %d ok = %v", rec, procs, ok)
	}

	for _, junk := range []string{"PASS", "ok  \trepro\t1.2s", "goos: linux", ""} {
		if _, _, ok := parseBenchLine(junk); ok {
			t.Fatalf("junk line %q accepted", junk)
		}
	}
}

// TestRooflineFields pins the derived roofline quantities
// (docs/PERFORMANCE.md §6): achieved bytes/s and arithmetic intensity
// from a row reporting both flops/op and bytes/op.
func TestRooflineFields(t *testing.T) {
	rec, _, ok := parseBenchLine(
		"BenchmarkKernelLayoutGamma/soa-4    50    2000000 ns/op    4800000 flops/op    3840000 bytes/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if want := 4800000.0 / 2000000 * 1e9; rec.FlopsPerSec != want {
		t.Errorf("flops_per_sec = %g, want %g", rec.FlopsPerSec, want)
	}
	if want := 3840000.0 / 2000000 * 1e9; rec.BytesPerSec != want {
		t.Errorf("bytes_per_sec = %g, want %g", rec.BytesPerSec, want)
	}
	if want := 4800000.0 / 3840000.0; rec.ArithmeticIntensity != want {
		t.Errorf("arithmetic_intensity = %g, want %g", rec.ArithmeticIntensity, want)
	}
}

// TestValidateGomaxprocs pins the stale-benchmark guard: a T-thread row
// captured with fewer schedulable procs than min(T, NumCPU) is
// rejected, while the same row on a machine that physically cannot
// offer T procs passes (the hardware-aware clamp).
func TestValidateGomaxprocs(t *testing.T) {
	mk := func(threads, procs float64) Record {
		return Record{Name: "KernelThreadsGamma/T=4", NsPerOp: 1,
			Metrics: map[string]float64{"threads": threads, "gomaxprocs": procs}}
	}
	cases := []struct {
		name   string
		numCPU int
		rec    Record
		wantOK bool
	}{
		{"enough procs", 16, mk(4, 4), true},
		{"oversubscribed capture", 16, mk(4, 1), false},
		{"clamped by hardware", 1, mk(4, 1), true},
		{"partially clamped", 2, mk(4, 1), false},
		{"serial row exempt", 16, mk(1, 1), true},
		{"no threads metric exempt", 16, Record{Name: "X", NsPerOp: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := Document{Env: Env{NumCPU: tc.numCPU}, Benchmarks: []Record{tc.rec}}
			err := validate(&doc)
			if (err == nil) != tc.wantOK {
				t.Errorf("validate with num_cpu=%d, metrics=%v: err=%v, wantOK=%v",
					tc.numCPU, tc.rec.Metrics, err, tc.wantOK)
			}
		})
	}
}

// TestValidateEnvFallback covers rows without a per-row gomaxprocs
// metric: the env-level value (from the -N name suffix) applies.
func TestValidateEnvFallback(t *testing.T) {
	doc := Document{
		Env: Env{NumCPU: 8, GOMAXPROCS: 2},
		Benchmarks: []Record{{Name: "X/T=4", NsPerOp: 1,
			Metrics: map[string]float64{"threads": 4}}},
	}
	if err := validate(&doc); err == nil {
		t.Error("validate accepted threads=4 with env gomaxprocs=2 on an 8-CPU machine")
	}
	doc.Env.GOMAXPROCS = 4
	if err := validate(&doc); err != nil {
		t.Errorf("validate rejected threads=4 with env gomaxprocs=4: %v", err)
	}
}

func TestParseHeaderLine(t *testing.T) {
	var env Env
	parseHeaderLine("goos: linux", &env)
	parseHeaderLine("goarch: arm64", &env)
	parseHeaderLine("cpu: Apple M3", &env)
	parseHeaderLine("BenchmarkFoo-8 1 1 ns/op", &env)
	if env.GOOS != "linux" || env.GOARCH != "arm64" || env.CPU != "Apple M3" {
		t.Fatalf("env = %+v", env)
	}
}
