package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	rec, procs, ok := parseBenchLine(
		"BenchmarkKernelThreadsGamma/T=4-16    100    123456 ns/op    500 flops/op    4.0 threads")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if rec.Name != "KernelThreadsGamma/T=4" {
		t.Fatalf("name = %q", rec.Name)
	}
	if procs != 16 {
		t.Fatalf("gomaxprocs suffix = %d, want 16", procs)
	}
	if rec.NsPerOp != 123456 || rec.Iterations != 100 {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Metrics["threads"] != 4 {
		t.Fatalf("metrics = %v", rec.Metrics)
	}
	wantFlops := rec.Metrics["flops/op"] / rec.NsPerOp * 1e9
	if rec.FlopsPerSec != wantFlops {
		t.Fatalf("flops/s = %v, want %v", rec.FlopsPerSec, wantFlops)
	}

	// A dashed sub-benchmark name without a numeric suffix keeps its
	// trailing element.
	rec, procs, ok = parseBenchLine("BenchmarkFoo/mode=fast-path    10    5 ns/op")
	if !ok || procs != 0 || rec.Name != "Foo/mode=fast-path" {
		t.Fatalf("rec = %+v procs = %d ok = %v", rec, procs, ok)
	}

	for _, junk := range []string{"PASS", "ok  \trepro\t1.2s", "goos: linux", ""} {
		if _, _, ok := parseBenchLine(junk); ok {
			t.Fatalf("junk line %q accepted", junk)
		}
	}
}

func TestParseHeaderLine(t *testing.T) {
	var env Env
	parseHeaderLine("goos: linux", &env)
	parseHeaderLine("goarch: arm64", &env)
	parseHeaderLine("cpu: Apple M3", &env)
	parseHeaderLine("BenchmarkFoo-8 1 1 ns/op", &env)
	if env.GOOS != "linux" || env.GOARCH != "arm64" || env.CPU != "Apple M3" {
		t.Fatalf("env = %+v", env)
	}
}
