// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON benchmark record. It is the back
// end of `make bench-json`, which runs the kernel/hybrid benchmarks and
// writes BENCH_kernels.json for the experiments harness and CI trend
// tracking.
//
// Each benchmark line becomes one record:
//
//	{"name": "KernelThreadsGamma/T=4", "ns_per_op": 123456,
//	 "iterations": 100, "flops_per_sec": 1.2e9, "metrics": {...}}
//
// flops_per_sec is derived from the benchmark's reported flops/op metric
// when present (0 otherwise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result row.
type Record struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// FlopsPerSec is derived from the flops/op metric (0 when the
	// benchmark reports none).
	FlopsPerSec float64 `json:"flops_per_sec"`
	// Metrics holds every extra unit the benchmark reported
	// (threads, columns/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_kernels.json", "output JSON file")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		if rec, ok := parseBenchLine(line); ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(records) == 0 {
		log.Fatal("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(records), *out)
}

// parseBenchLine parses one "BenchmarkName-8  N  V unit  V unit ..."
// line; ok is false for non-benchmark lines (headers, PASS, ok ...).
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix from the last path element.
	if i := strings.LastIndex(name, "-"); i > strings.LastIndex(name, "/") {
		name = name[:i]
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		default:
			rec.Metrics[unit] = v
		}
	}
	if rec.NsPerOp <= 0 {
		return Record{}, false
	}
	if flops, ok := rec.Metrics["flops/op"]; ok && flops > 0 {
		rec.FlopsPerSec = flops / rec.NsPerOp * 1e9
	}
	if len(rec.Metrics) == 0 {
		rec.Metrics = nil
	}
	return rec, true
}
