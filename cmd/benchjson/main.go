// Command benchjson converts `go test -bench` text output (read from
// stdin) into a machine-readable JSON benchmark record. It is the back
// end of `make bench-json`, which runs the kernel/hybrid benchmarks and
// writes BENCH_kernels.json for the experiments harness and CI trend
// tracking.
//
// The output is one document with the environment the benchmarks ran
// under — a KernelThreadsGamma speedup means nothing without knowing
// GOMAXPROCS — followed by one record per benchmark line:
//
//	{"env": {"go_version": "go1.24", "goos": "linux", "goarch": "amd64",
//	         "cpu": "...", "num_cpu": 16, "gomaxprocs": 16},
//	 "benchmarks": [
//	   {"name": "KernelThreadsGamma/T=4", "ns_per_op": 123456,
//	    "iterations": 100, "flops_per_sec": 1.2e9, "metrics": {...}}]}
//
// goos/goarch/cpu come from the `go test` header lines when present;
// gomaxprocs comes from the benchmark names' "-N" suffix (the value the
// test binary actually ran with, not this process's). flops_per_sec is
// derived from the benchmark's reported flops/op metric (0 otherwise).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Env records where and how the benchmarks ran.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
}

// Record is one benchmark result row.
type Record struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// FlopsPerSec is derived from the flops/op metric (0 when the
	// benchmark reports none).
	FlopsPerSec float64 `json:"flops_per_sec"`
	// BytesPerSec is the achieved memory traffic, derived from the
	// bytes/op metric (0 when the benchmark reports none). Against the
	// machine's memory bandwidth it places the kernel on a roofline
	// plot (docs/PERFORMANCE.md §6).
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`
	// ArithmeticIntensity is flops/op over bytes/op — the roofline
	// x-axis (0 when either metric is missing).
	ArithmeticIntensity float64 `json:"arithmetic_intensity,omitempty"`
	// Metrics holds every extra unit the benchmark reported
	// (threads, columns/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole output file.
type Document struct {
	Env        Env      `json:"env"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_kernels.json", "output JSON file")
	flag.Parse()

	doc := Document{Env: Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		parseHeaderLine(line, &doc.Env)
		if rec, procs, ok := parseBenchLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, rec)
			if procs > 0 {
				doc.Env.GOMAXPROCS = procs
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin (pipe `go test -bench` output in)")
	}
	if err := validate(&doc); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s (gomaxprocs %d)\n",
		len(doc.Benchmarks), *out, doc.Env.GOMAXPROCS)
}

// validate rejects records whose thread-scaling rows could not have
// scaled: a row claiming T threads that ran with fewer schedulable
// procs than the machine allows measures contention, not speedup, and
// has silently poisoned BENCH_kernels.json before. The check is
// hardware-aware — a T=8 row on a 4-CPU machine legitimately runs at
// gomaxprocs 4, so the requirement is gomaxprocs >= min(T, num_cpu).
func validate(doc *Document) error {
	for _, rec := range doc.Benchmarks {
		threads, ok := rec.Metrics["threads"]
		if !ok || threads < 2 {
			continue
		}
		procs, ok := rec.Metrics["gomaxprocs"]
		if !ok {
			procs = float64(doc.Env.GOMAXPROCS)
		}
		need := threads
		if n := float64(doc.Env.NumCPU); n < need {
			need = n
		}
		if procs < need {
			return fmt.Errorf("%s: threads=%g row captured with gomaxprocs=%g < min(threads, num_cpu=%d)=%g; "+
				"rerun with GOMAXPROCS >= %g (make bench-json sets it from nproc)",
				rec.Name, threads, procs, doc.Env.NumCPU, need, need)
		}
	}
	return nil
}

// parseHeaderLine harvests the `go test` preamble ("goos: linux",
// "goarch: amd64", "cpu: ...") — the test binary's view, which beats
// this process's runtime constants when they are present.
func parseHeaderLine(line string, env *Env) {
	switch {
	case strings.HasPrefix(line, "goos: "):
		env.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
	case strings.HasPrefix(line, "goarch: "):
		env.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
	case strings.HasPrefix(line, "cpu: "):
		env.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
	}
}

// parseBenchLine parses one "BenchmarkName-8  N  V unit  V unit ..."
// line; ok is false for non-benchmark lines (headers, PASS, ok ...).
// procs is the -GOMAXPROCS suffix (0 when the name carries none).
func parseBenchLine(line string) (rec Record, procs int, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, 0, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix from the last path element.
	if i := strings.LastIndex(name, "-"); i > strings.LastIndex(name, "/") {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			procs = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, 0, false
	}
	rec = Record{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, 0, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = v
		default:
			rec.Metrics[unit] = v
		}
	}
	if rec.NsPerOp <= 0 {
		return Record{}, 0, false
	}
	flops := rec.Metrics["flops/op"]
	bytesOp := rec.Metrics["bytes/op"]
	if flops > 0 {
		rec.FlopsPerSec = flops / rec.NsPerOp * 1e9
	}
	if bytesOp > 0 {
		rec.BytesPerSec = bytesOp / rec.NsPerOp * 1e9
		if flops > 0 {
			rec.ArithmeticIntensity = flops / bytesOp
		}
	}
	if len(rec.Metrics) == 0 {
		rec.Metrics = nil
	}
	return rec, procs, true
}
