// Command raxml-light performs the same maximum-likelihood inference as
// the examl command but under the classical fork-join parallelization
// scheme — the comparator the paper measures against. Both binaries run
// exactly the same search algorithm; comparing their communication
// profiles on the same dataset reproduces the paper's core contrast.
//
// Flags are identical to examl's; see that command's documentation.
package main

import (
	"flag"
	"log"

	"repro"
	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("raxml-light: ")
	var args cli.Args
	cli.Register(&args)
	flag.Parse()
	args.Scheme = examl.ForkJoin
	switch {
	case args.NetLaunch:
		if err := cli.Launch(args); err != nil {
			log.Fatal(err)
		}
	case args.NetRank >= 0:
		nr, err := cli.RunNet(args)
		if err != nil {
			log.Fatal(err)
		}
		cli.ReportNet(args, nr)
	default:
		res, err := cli.Run(args)
		if err != nil {
			log.Fatal(err)
		}
		cli.Report(args, res)
	}
}
