// Command examld is the inference daemon: it keeps a warm pool of
// worker processes and serves phylogenetic inference jobs over an
// HTTP/JSON API, multiplexing concurrent multi-rank searches across
// the pool and migrating jobs off dead ranks via checkpoint shipping.
//
// Daemon mode (the default) spawns -workers copies of itself in worker
// mode and listens on -http:
//
//	examld -http 127.0.0.1:8441 -workers 4
//
// Worker mode hosts one rank of one job at a time and is normally
// spawned by the daemon, but extra capacity can be attached from any
// reachable machine:
//
//	examld -worker -pool <daemon-pool-addr>
//
// The daemon also serves a live observability plane (on by default):
// GET /metrics exposes Prometheus text-format metrics — scheduler queue
// depth, pool strength, job latency histograms, migration counters,
// plus the process-wide mpinet frame and kernel span totals — and
// /debug/pprof/ serves the standard Go profiles of the daemon process.
// Worker processes are profiled through the control protocol:
// GET /api/v1/pool/{id}/profile?name=heap. See docs/OBSERVABILITY.md.
//
// See docs/SERVICE.md for the API and operational behavior.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
)

func main() {
	var (
		httpAddr = flag.String("http", "127.0.0.1:8441", "HTTP API listen address")
		poolAddr = flag.String("pool", "127.0.0.1:0", "worker-pool listen address (daemon) or daemon pool address to join (-worker)")
		workers  = flag.Int("workers", 4, "warm worker processes the daemon spawns and maintains")
		worker   = flag.Bool("worker", false, "run as a pool worker instead of the daemon")
		addrFile = flag.String("addr-file", "", "write the bound HTTP address to this file (for scripts; useful with -http :0)")

		hbInterval  = flag.Duration("hb-interval", 100*time.Millisecond, "rank-mesh heartbeat interval")
		hbTimeout   = flag.Duration("hb-timeout", 2*time.Second, "rank-mesh heartbeat timeout (failure detection latency)")
		recoveryWin = flag.Duration("recovery-window", 0, "recovery membership window (default 2x hb-timeout)")
		withMetrics = flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
		withPprof   = flag.Bool("pprof", true, "serve net/http/pprof at /debug/pprof/")
		quiet       = flag.Bool("quiet", false, "suppress operational logging")
		versionOnly = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *versionOnly {
		fmt.Println("examld (examl-go inference service)")
		return
	}

	if *worker {
		pool := *poolAddr
		if flag.NArg() > 0 {
			// The daemon spawns workers with the pool address appended
			// as a positional argument.
			pool = flag.Arg(0)
		}
		if err := service.RunWorker(pool); err != nil {
			log.Fatal(err)
		}
		return
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	srv, err := service.New(service.Options{
		PoolAddr:          *poolAddr,
		Workers:           *workers,
		WorkerArgv:        []string{self, "-worker", "-pool"},
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
		RecoveryWindow:    *recoveryWin,
		Logf:              logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		log.Fatalf("examld: HTTP listener: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("examld: writing -addr-file: %v", err)
		}
	}
	logf("examld: API on http://%s, worker pool on %s (%d warm workers)",
		ln.Addr(), srv.PoolAddr(), *workers)

	// The API mounts under a top-level mux so the observability plane
	// (docs/OBSERVABILITY.md) can ride alongside: /metrics merges the
	// server's registry (queue, pool, job latency) with the process one
	// (mpinet frames, kernel spans), and /debug/pprof profiles the
	// daemon itself — worker processes are profiled through
	// GET /api/v1/pool/{id}/profile instead.
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *withMetrics {
		mux.Handle("GET /metrics", metrics.Handler(srv.Metrics(), metrics.Default()))
	}
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	hs := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logf("examld: shutting down")
		hs.Close()
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
