// Command phyrun orchestrates a full inference campaign: N independent
// maximum-likelihood searches (random and/or parsimony starts) plus B
// nonparametric bootstrap replicates, scheduled concurrently and
// reduced to one support-annotated best tree and a majority-rule
// consensus (docs/ORCHESTRATOR.md).
//
// The campaign is deterministic: every task derives its seeds from the
// campaign seed (-p) through a splittable hash, so the same invocation
// produces bit-identical outputs at any -workers value, on either
// backend, and across kill/resume cycles.
//
//	-s/-q           alignment + partition scheme (or -sim-* to simulate)
//	-starts         random-start ML searches
//	-parsimony-starts  parsimony-start ML searches
//	-bootstrap      bootstrap replicates (budget; see -autostop)
//	-autostop       stop bootstrapping at the frequency criterion
//	-backend        local (in-process pool) or service (examld daemon)
//	-campaign FILE  resumable manifest: a killed run re-runs only
//	                missing tasks
//	-n PREFIX       outputs: PREFIX.bestTree.nwk, PREFIX.support.nwk,
//	                PREFIX.consensus.nwk, PREFIX.bootstraps.nwk,
//	                PREFIX.campaign.json
//
// Examples:
//
//	phyrun -s data.phy -q parts.txt -starts 10 -bootstrap 100 -autostop -workers 4 -n run1
//	phyrun -sim-taxa 12 -sim-genelen 80 -starts 2 -bootstrap 20 -backend service -service http://127.0.0.1:8441 -n run2
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	examl "repro"
	"repro/internal/metrics"
	"repro/internal/phyrun"
	"repro/internal/service/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phyrun: ")

	var (
		alignPath = flag.String("s", "", "alignment file (relaxed PHYLIP)")
		partPath  = flag.String("q", "", "partition scheme file (RAxML format)")
		simTaxa   = flag.Int("sim-taxa", 0, "simulate a dataset with this many taxa instead of -s")
		simParts  = flag.Int("sim-partitions", 1, "simulated partitions")
		simLen    = flag.Int("sim-genelen", 60, "simulated gene length per partition")
		simSeed   = flag.Int64("sim-seed", 42, "simulated dataset seed")

		seed       = flag.Int64("p", 12345, "campaign seed (all task seeds derive from it)")
		starts     = flag.Int("starts", 1, "random-start ML searches")
		parsStarts = flag.Int("parsimony-starts", 0, "parsimony-start ML searches")
		boots      = flag.Int("bootstrap", 0, "bootstrap replicates (budget when -autostop is set)")

		autostop   = flag.Bool("autostop", false, "adaptive bootstopping: stop replicates at the frequency criterion")
		stopEvery  = flag.Int("autostop-every", 0, "bootstop checkpoint spacing in replicates (0 = default 10)")
		stopCutoff = flag.Float64("autostop-cutoff", 0, "bootstop split-frequency cutoff (0 = default 0.03)")
		stopPerms  = flag.Int("autostop-perms", 0, "bootstop pseudo-half permutations per checkpoint (0 = default 100)")

		backend    = flag.String("backend", "local", "task backend: local (in-process) or service (examld)")
		serviceURL = flag.String("service", "", "service backend: examld base URL (e.g. http://127.0.0.1:8441)")
		label      = flag.String("label", "", "service backend: campaign label on submitted jobs (default phyrun-<seed>)")

		workers = flag.Int("workers", 1, "concurrent tasks (wall-clock only; results are identical at any value)")
		ranks   = flag.Int("np", 1, "ranks per task")
		threads = flag.Int("T", 1, "threads per rank")
		iters   = flag.Int("iter", 0, "maximum search iterations per task (0 = default)")
		epsilon = flag.Float64("epsilon", 0, "likelihood convergence epsilon (0 = default)")
		radius  = flag.Int("radius", 0, "SPR rearrangement radius (0 = default)")

		manifestPath = flag.String("campaign", "", "campaign manifest file (enables kill/resume)")
		name         = flag.String("n", "phyrun", "run name (output prefix)")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus metrics at GET /metrics on this address during the run")

		dieAfterTasks = flag.Int("die-after-tasks", 0, "test hook: exit(7) after this many task completions (exercises -campaign resume)")
	)
	flag.Parse()

	if err := run(runArgs{
		alignPath: *alignPath, partPath: *partPath,
		simTaxa: *simTaxa, simParts: *simParts, simLen: *simLen, simSeed: *simSeed,
		seed: *seed, starts: *starts, parsStarts: *parsStarts, boots: *boots,
		autostop: *autostop, stopEvery: *stopEvery, stopCutoff: *stopCutoff, stopPerms: *stopPerms,
		backend: *backend, serviceURL: *serviceURL, label: *label,
		workers: *workers, ranks: *ranks, threads: *threads,
		iters: *iters, epsilon: *epsilon, radius: *radius,
		manifestPath: *manifestPath, name: *name, metricsAddr: *metricsAddr,
		dieAfterTasks: *dieAfterTasks,
	}); err != nil {
		log.Fatal(err)
	}
}

type runArgs struct {
	alignPath, partPath             string
	simTaxa, simParts, simLen       int
	simSeed                         int64
	seed                            int64
	starts, parsStarts, boots       int
	autostop                        bool
	stopEvery                       int
	stopCutoff                      float64
	stopPerms                       int
	backend, serviceURL, label      string
	workers, ranks, threads         int
	iters                           int
	epsilon                         float64
	radius                          int
	manifestPath, name, metricsAddr string
	dieAfterTasks                   int
}

func run(a runArgs) error {
	plan := phyrun.Plan{
		Seed:            a.seed,
		RandomStarts:    a.starts,
		ParsimonyStarts: a.parsStarts,
		Replicates:      a.boots,
	}
	if a.autostop {
		if a.boots == 0 {
			return fmt.Errorf("-autostop needs a -bootstrap budget")
		}
		plan.Bootstop = &phyrun.BootstopConfig{
			CheckEvery:   a.stopEvery,
			Cutoff:       a.stopCutoff,
			Permutations: a.stopPerms,
		}
	}
	if err := plan.Validate(); err != nil {
		return err
	}

	// Materialize the dataset description once: both backends and the
	// manifest digest derive from the same bytes.
	var (
		phylip, partitions string
		sim                *client.SimulateSpec
	)
	if a.simTaxa > 0 {
		if a.alignPath != "" {
			return fmt.Errorf("use either -s or -sim-taxa, not both")
		}
		sim = &client.SimulateSpec{Taxa: a.simTaxa, Partitions: a.simParts, GeneLength: a.simLen, Seed: a.simSeed}
	} else {
		if a.alignPath == "" {
			return fmt.Errorf("an alignment is required (-s, or -sim-taxa to simulate)")
		}
		raw, err := os.ReadFile(a.alignPath)
		if err != nil {
			return err
		}
		phylip = string(raw)
		if a.partPath != "" {
			raw, err := os.ReadFile(a.partPath)
			if err != nil {
				return err
			}
			partitions = string(raw)
		}
	}
	datasetDigest := digestDataset(phylip, partitions, sim)

	runner, err := buildRunner(a, phylip, partitions, sim)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	m := phyrun.NewMetrics(reg)
	if a.metricsAddr != "" {
		ln, err := net.Listen("tcp", a.metricsAddr)
		if err != nil {
			return fmt.Errorf("binding -metrics-addr %s: %w", a.metricsAddr, err)
		}
		hs := &http.Server{Handler: metricsMux(reg)}
		go hs.Serve(ln)
		defer hs.Close()
		log.Printf("observability: /metrics on http://%s", ln.Addr())
	}

	var onDone func(phyrun.Task, *phyrun.TaskRecord)
	if a.dieAfterTasks > 0 {
		n := 0
		onDone = func(t phyrun.Task, _ *phyrun.TaskRecord) {
			if n++; n >= a.dieAfterTasks {
				log.Printf("die-after-tasks: exiting after %d completion(s) (last: %s)", n, t.ID())
				os.Exit(7)
			}
		}
	}

	res, err := phyrun.Run(context.Background(), phyrun.Config{
		Plan:          plan,
		Runner:        runner,
		Workers:       a.workers,
		ManifestPath:  a.manifestPath,
		DatasetDigest: datasetDigest,
		Logf:          log.Printf,
		Metrics:       m,
		OnTaskDone:    onDone,
	})
	if err != nil {
		return err
	}
	return report(a.name, plan, res)
}

// buildRunner picks the task backend.
func buildRunner(a runArgs, phylip, partitions string, sim *client.SimulateSpec) (phyrun.Runner, error) {
	switch a.backend {
	case "local":
		var (
			d   *examl.Dataset
			err error
		)
		if sim != nil {
			d, err = examl.Simulate(sim.Taxa, sim.Partitions, sim.GeneLength, sim.Seed)
		} else {
			d, err = examl.LoadPhylip(strings.NewReader(phylip), partitions)
		}
		if err != nil {
			return nil, err
		}
		return &examl.LocalCampaignRunner{
			Dataset: d,
			Config: examl.Config{
				Scheme:        examl.Decentralized,
				Ranks:         a.ranks,
				Threads:       a.threads,
				MaxIterations: a.iters,
				Epsilon:       a.epsilon,
				SPRRadius:     a.radius,
			},
		}, nil
	case "service":
		if a.serviceURL == "" {
			return nil, fmt.Errorf("-backend service needs -service URL")
		}
		label := a.label
		if label == "" {
			label = fmt.Sprintf("phyrun-%d", a.seed)
		}
		return &phyrun.ServiceRunner{
			Client: client.New(a.serviceURL),
			Base: client.JobSpec{
				Phylip:        phylip,
				Partitions:    partitions,
				Simulate:      sim,
				Ranks:         a.ranks,
				Threads:       a.threads,
				MaxIterations: a.iters,
				Epsilon:       a.epsilon,
				SPRRadius:     a.radius,
			},
			Campaign: label,
		}, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want local or service)", a.backend)
	}
}

// digestDataset pins the campaign's input data in the manifest.
func digestDataset(phylip, partitions string, sim *client.SimulateSpec) string {
	h := sha256.New()
	if sim != nil {
		fmt.Fprintf(h, "sim:%d:%d:%d:%d", sim.Taxa, sim.Partitions, sim.GeneLength, sim.Seed)
	} else {
		fmt.Fprintf(h, "phylip:%d:", len(phylip))
		h.Write([]byte(phylip))
		h.Write([]byte(partitions))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func metricsMux(reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler(reg, metrics.Default()))
	return mux
}

// report writes the campaign outputs and a summary line.
func report(prefix string, plan phyrun.Plan, res *phyrun.Result) error {
	writeFile := func(suffix, content string) error {
		return os.WriteFile(prefix+suffix, []byte(content), 0o644)
	}
	if err := writeFile(".bestTree.nwk", res.BestTree+"\n"); err != nil {
		return err
	}
	payload, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFile(".campaign.json", string(payload)+"\n"); err != nil {
		return err
	}
	log.Printf("best: start %d, lnl %.6f (bits %s) → %s.bestTree.nwk",
		res.BestStart, res.BestLogLikelihood, res.BestLnLBits, prefix)

	if len(res.ReplicateTrees) > 0 {
		if err := writeFile(".support.nwk", res.AnnotatedTree+"\n"); err != nil {
			return err
		}
		if err := writeFile(".consensus.nwk", res.ConsensusTree+"\n"); err != nil {
			return err
		}
		if err := writeFile(".bootstraps.nwk", strings.Join(res.ReplicateTrees, "\n")+"\n"); err != nil {
			return err
		}
		if res.Converged {
			log.Printf("bootstop: converged at %d of %d replicate(s) (%d run)",
				res.ConvergedAt, plan.Replicates, res.ReplicatesRun)
		}
		log.Printf("supports: %d replicate(s) → %s.support.nwk, %s.consensus.nwk, %s.bootstraps.nwk",
			len(res.ReplicateTrees), prefix, prefix, prefix)
	}
	return nil
}
