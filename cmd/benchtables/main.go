// Command benchtables regenerates the paper's evaluation artifacts —
// Table I and Figures 3, 4(a), 4(b) — and prints them as text tables with
// paper-vs-measured rows.
//
// Usage:
//
//	benchtables [-scale small|default|paper] [-table1] [-fig3] [-fig4a] [-fig4b]
//
// With no selection flags, everything runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	scaleName := flag.String("scale", "default", "experiment scale: small, default, or paper")
	table1 := flag.Bool("table1", false, "regenerate Table I")
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	fig4a := flag.Bool("fig4a", false, "regenerate Figure 4(a)")
	fig4b := flag.Bool("fig4b", false, "regenerate Figure 4(b)")
	flag.Parse()

	var sc experiments.Scale
	switch *scaleName {
	case "small":
		sc = experiments.Small()
	case "default":
		sc = experiments.Default()
	case "paper":
		sc = experiments.Paper()
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	all := !*table1 && !*fig3 && !*fig4a && !*fig4b
	run := func(name string, f func() (fmt.Stringer, error)) {
		start := time.Now()
		fmt.Printf("==== %s (scale=%s) ====\n", name, *scaleName)
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if all || *table1 {
		run("Table I", func() (fmt.Stringer, error) {
			r, err := experiments.Table1(sc)
			if err != nil {
				return nil, err
			}
			return render{r.Render}, nil
		})
	}
	if all || *fig3 {
		run("Figure 3", func() (fmt.Stringer, error) {
			r, err := experiments.Fig3(sc)
			if err != nil {
				return nil, err
			}
			return render{r.Render}, nil
		})
	}
	if all || *fig4a {
		run("Figure 4(a)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig4(sc, false)
			if err != nil {
				return nil, err
			}
			return render{r.Render}, nil
		})
	}
	if all || *fig4b {
		run("Figure 4(b)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig4(sc, true)
			if err != nil {
				return nil, err
			}
			return render{r.Render}, nil
		})
	}
	os.Exit(0)
}

// render adapts a Render method to fmt.Stringer.
type render struct{ f func() string }

func (r render) String() string { return r.f() }
