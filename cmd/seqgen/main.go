// Command seqgen generates simulated DNA datasets with the paper's two
// test-set recipes and writes the alignment (PHYLIP), the partition scheme
// (RAxML format), and the true tree (Newick).
//
// Examples:
//
//	seqgen -taxa 52 -partitions 10 -genelen 1000 -o tenparts   # Fig. 4 / Table I recipe
//	seqgen -taxa 150 -sites 200000 -o big                      # Fig. 3 recipe (scaled)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/msa"
	"repro/internal/seqgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seqgen: ")

	taxa := flag.Int("taxa", 52, "number of taxa")
	partitions := flag.Int("partitions", 0, "number of gene partitions (0 = single unpartitioned alignment)")
	geneLen := flag.Int("genelen", 1000, "sites per gene partition")
	sites := flag.Int("sites", 100000, "total sites for the unpartitioned recipe")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("o", "sim", "output prefix")
	writeBinary := flag.Bool("binary", false, "also write the compact binary alignment format")
	flag.Parse()

	var cfg seqgen.Config
	if *partitions > 0 {
		cfg = seqgen.PartitionedGenes(*taxa, *partitions, *geneLen, *seed)
	} else {
		cfg = seqgen.LargeUnpartitioned(*taxa, *sites, *seed)
	}
	res, err := seqgen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	phyPath := *out + ".phy"
	f, err := os.Create(phyPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := msa.WritePhylip(f, res.Alignment); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	partPath := *out + ".parts.txt"
	if err := os.WriteFile(partPath, []byte(msa.FormatPartitionFile(res.Partitions)), 0o644); err != nil {
		log.Fatal(err)
	}
	treePath := *out + ".trueTree.nwk"
	if err := os.WriteFile(treePath, []byte(res.Tree.Newick()+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		log.Fatal(err)
	}
	if *writeBinary {
		binPath := *out + ".ebin"
		bf, err := os.Create(binPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := msa.WriteBinary(bf, d); err != nil {
			log.Fatal(err)
		}
		if err := bf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", binPath)
	}
	fmt.Printf("wrote %s (%d taxa × %d sites, %d partitions, %d patterns), %s, %s\n",
		phyPath, res.Alignment.NTaxa(), res.Alignment.NSites(), len(res.Partitions), d.TotalPatterns(), partPath, treePath)
}
