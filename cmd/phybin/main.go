// Command phybin converts between the relaxed PHYLIP text format and the
// compact binary alignment format (the paper's §V binary I/O plan): the
// binary form stores compressed site patterns at two states per byte with
// a CRC, loading far faster for repeated large-scale runs.
//
// Usage:
//
//	phybin -in data.phy -q parts.txt -out data.ebin      # text → binary
//	phybin -in data.ebin -decode -out summary             # inspect binary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/msa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phybin: ")

	in := flag.String("in", "", "input file")
	out := flag.String("out", "", "output file (encode mode)")
	partPath := flag.String("q", "", "partition scheme file (encode mode)")
	decode := flag.Bool("decode", false, "inspect a binary alignment instead of encoding")
	flag.Parse()

	if *in == "" {
		log.Fatal("an input file is required (-in)")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	if *decode {
		d, err := msa.ReadBinary(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d taxa, %d partitions, %d patterns, %d sites\n",
			*in, d.NTaxa(), d.NPartitions(), d.TotalPatterns(), d.TotalSites())
		for _, p := range d.Parts {
			fmt.Printf("  %-16s %8d patterns %8d sites  freqs A=%.3f C=%.3f G=%.3f T=%.3f\n",
				p.Name, p.NPatterns(), p.NSites(), p.Freqs[0], p.Freqs[1], p.Freqs[2], p.Freqs[3])
		}
		return
	}

	if *out == "" {
		log.Fatal("an output file is required (-out)")
	}
	a, err := msa.ParsePhylip(f)
	if err != nil {
		log.Fatal(err)
	}
	var parts []msa.Partition
	if *partPath != "" {
		raw, err := os.ReadFile(*partPath)
		if err != nil {
			log.Fatal(err)
		}
		parts, err = msa.ParsePartitionFile(string(raw), a.NSites())
		if err != nil {
			log.Fatal(err)
		}
	}
	d, err := msa.Compress(a, parts)
	if err != nil {
		log.Fatal(err)
	}
	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := msa.WriteBinary(of, d); err != nil {
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	inInfo, _ := os.Stat(*in)
	outInfo, _ := os.Stat(*out)
	if inInfo != nil && outInfo != nil {
		fmt.Printf("%s (%d B) → %s (%d B): %.1f%% of text size, %d patterns\n",
			*in, inInfo.Size(), *out, outInfo.Size(),
			100*float64(outInfo.Size())/float64(inInfo.Size()), d.TotalPatterns())
	}
}
