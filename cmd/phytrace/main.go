// Command phytrace merges the per-rank JSONL telemetry traces written
// by `examl -trace` into one Chrome trace-event file and attributes the
// run's wall time: per-iteration critical path, per-rank time spent
// waiting on peers inside collectives, and a straggler ranking.
//
//	examl -s data.phy -np 4 -net-launch -trace run.jsonl ...
//	phytrace -o run.chrome.json run.jsonl.rank*
//
// The output loads directly in chrome://tracing or https://ui.perfetto.dev;
// the text report prints to stdout. Traces from different processes are
// aligned via the wall-clock epoch in each stream's "meta" header, and
// the global rank of a ".rank<N>" file's events is offset by N (net-mode
// processes each record a single-rank collector). A daemon event stream
// holding several jobs is split into one trace "process" per job.
//
//	-o FILE    write the Chrome trace JSON here (default trace.chrome.json, "" = skip)
//	-report    print the attribution report (default true)
//	-job ID    only this job's events
//	-check     exit nonzero unless a nonzero critical path was found
//
// See docs/OBSERVABILITY.md for the event schema and a walkthrough.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/phytrace"
)

func main() {
	var (
		outPath = flag.String("o", "trace.chrome.json", "output Chrome trace JSON path (empty = no trace file)")
		report  = flag.Bool("report", true, "print the critical-path / straggler report")
		jobID   = flag.String("job", "", "restrict to one job ID (daemon traces hold several)")
		check   = flag.Bool("check", false, "exit nonzero unless a nonzero critical path was found")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: phytrace [flags] trace.jsonl [trace.jsonl.rank1 ...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	sources := make([]*phytrace.Source, 0, flag.NArg())
	for _, path := range flag.Args() {
		s, err := phytrace.ParseFile(path)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, s)
	}
	merged := phytrace.MergeSources(sources)
	if *jobID != "" {
		kept := merged.Jobs[:0]
		for _, jt := range merged.Jobs {
			if jt.Job == *jobID {
				kept = append(kept, jt)
			}
		}
		merged.Jobs = kept
	}
	if len(merged.Jobs) == 0 {
		fatal(fmt.Errorf("no matching trace events in %d file(s)", flag.NArg()))
	}

	analyses := make([]*phytrace.Analysis, 0, len(merged.Jobs))
	var criticalNS int64
	for _, jt := range merged.Jobs {
		a := phytrace.Analyze(jt)
		criticalNS += a.CriticalPathNS
		analyses = append(analyses, a)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := phytrace.WriteChromeTrace(f, merged, analyses); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *outPath)
	}
	if *report {
		for i, a := range analyses {
			if i > 0 {
				fmt.Println()
			}
			a.WriteReport(os.Stdout)
		}
	}
	if *check && criticalNS == 0 {
		fatal(fmt.Errorf("critical path is zero: the trace holds no attributable kernel spans"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phytrace:", err)
	os.Exit(1)
}
