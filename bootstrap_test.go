package examl

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bootstrap"
	"repro/internal/phyrun"
	"repro/internal/tree"
)

// TestBootstrapMatchesFlatOracle checks the orchestrator-backed
// Bootstrap against a hand-rolled flat loop using the same splittable
// per-task seeds: identical reference tree, replicate trees, supports,
// and consensus, bit for bit.
func TestBootstrapMatchesFlatOracle(t *testing.T) {
	d, err := Simulate(8, 2, 200, 71)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 1, MaxIterations: 2, Seed: 13}
	const B = 4

	got, err := Bootstrap(d, cfg, B)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: reference search at cfg.Seed, then each replicate in a
	// flat loop with seeds derived from the campaign plan.
	plan := phyrun.Plan{Seed: cfg.Seed, RandomStarts: 1, Replicates: B, StartSeeds: []int64{cfg.Seed}}
	ref, err := Infer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refTree, err := tree.ParseNewick(ref.Tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	var repTrees []*tree.Tree
	var repNewicks []string
	for _, task := range plan.Tasks() {
		if task.Kind != phyrun.TaskReplicate {
			continue
		}
		rd, err := ResampleDataset(d, task.ResampleSeed)
		if err != nil {
			t.Fatal(err)
		}
		repCfg := cfg
		repCfg.Seed = task.Seed
		res, err := Infer(rd, repCfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := tree.ParseNewick(res.Tree, 1)
		if err != nil {
			t.Fatal(err)
		}
		repTrees = append(repTrees, rt)
		repNewicks = append(repNewicks, res.Tree)
	}
	if !reflect.DeepEqual(got.ReplicateTrees, repNewicks) {
		t.Fatalf("replicate trees differ from the flat oracle:\n%v\n%v", got.ReplicateTrees, repNewicks)
	}
	sup, err := bootstrap.SupportValues(refTree, repTrees)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Supports, sup) {
		t.Fatalf("supports differ from the flat oracle: %v vs %v", got.Supports, sup)
	}
	annotated, err := bootstrap.AnnotatedNewick(refTree, sup)
	if err != nil {
		t.Fatal(err)
	}
	if got.BestTree != annotated {
		t.Fatalf("annotated best tree differs:\n%s\n%s", got.BestTree, annotated)
	}
	cons, csup, err := bootstrap.Consensus(repTrees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.ConsensusTree != cons.Newick() || !reflect.DeepEqual(got.ConsensusSupports, csup) {
		t.Fatal("consensus differs from the flat oracle")
	}
}

// TestBootstrapWorkerCountInvariance: the Workers option changes
// wall-clock behavior only, never results.
func TestBootstrapWorkerCountInvariance(t *testing.T) {
	d, err := Simulate(8, 1, 150, 72)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 1, MaxIterations: 2, Seed: 21}
	seq, err := BootstrapWithOptions(d, cfg, 4, BootstrapOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BootstrapWithOptions(d, cfg, 4, BootstrapOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("results vary with worker count:\n%+v\n%+v", seq, par)
	}
}

// TestBootstrapLegacySeeding pins the pre-orchestrator behavior behind
// the LegacySeeding flag: sequential resample draws from one generator
// (cfg.Seed^0x0b00f5) and replicate search seeds cfg.Seed+r+1. The
// oracle below *is* that old algorithm; the flag must reproduce it, and
// the default path must differ from it (different seeding scheme).
func TestBootstrapLegacySeeding(t *testing.T) {
	d, err := Simulate(8, 2, 200, 73)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 1, MaxIterations: 2, Seed: 17}
	const B = 3

	legacy, err := BootstrapWithOptions(d, cfg, B, BootstrapOptions{LegacySeeding: true})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b00f5))
	var oracle []string
	for r := 0; r < B; r++ {
		resampled, err := bootstrap.Resample(d.d, rng)
		if err != nil {
			t.Fatal(err)
		}
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r) + 1
		res, err := Infer(&Dataset{d: resampled}, repCfg)
		if err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, res.Tree)
	}
	if !reflect.DeepEqual(legacy.ReplicateTrees, oracle) {
		t.Fatalf("legacy path diverged from the sequential oracle:\n%v\n%v", legacy.ReplicateTrees, oracle)
	}

	modern, err := Bootstrap(d, cfg, B)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(modern.ReplicateTrees, legacy.ReplicateTrees) {
		t.Fatal("splittable seeding produced the legacy replicate sequence — seeds are not actually split")
	}

	// Legacy is sequential-only.
	if _, err := BootstrapWithOptions(d, cfg, B, BootstrapOptions{LegacySeeding: true, Workers: 2}); err == nil {
		t.Error("legacy seeding accepted a worker pool")
	}
	if _, err := BootstrapWithOptions(d, cfg, B, BootstrapOptions{LegacySeeding: true, AutoStop: true}); err == nil {
		t.Error("legacy seeding accepted autostop")
	}
}

// TestBootstrapAutoStop: on a strong-signal dataset the replicates are
// near-duplicates, so adaptive bootstopping must stop before the fixed
// budget, at a concurrency-independent point, with supports on the
// converged prefix identical to the fixed-B run's over that prefix.
func TestBootstrapAutoStop(t *testing.T) {
	// Long genes + parsimony starts give near-duplicate replicate
	// topologies; cutoff 0.15 is between this dataset's pseudo-half
	// distance and a divergent one's (see TestBootstrapAutoStopDivergent).
	d, err := Simulate(6, 1, 400, 75)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 1, MaxIterations: 2, Seed: 29, ParsimonyStartTree: true}
	const B = 12

	fixed, err := Bootstrap(d, cfg, B)
	if err != nil {
		t.Fatal(err)
	}

	var prev *BootstrapResult
	for _, workers := range []int{1, 3} {
		adaptive, err := BootstrapWithOptions(d, cfg, B, BootstrapOptions{
			AutoStop: true, AutoStopEvery: 4, AutoStopCutoff: 0.15, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !adaptive.Converged {
			t.Fatal("strong-signal bootstrap did not converge — criterion or data broken")
		}
		if adaptive.Replicates >= B {
			t.Fatalf("converged run used %d replicates, no fewer than the budget %d", adaptive.Replicates, B)
		}
		n := adaptive.Replicates
		if !reflect.DeepEqual(adaptive.ReplicateTrees, fixed.ReplicateTrees[:n]) {
			t.Fatal("converged prefix trees differ from the fixed-B run's prefix")
		}
		// Supports on the prefix: recompute from the fixed run's trees.
		var prefixTrees []*tree.Tree
		for _, nw := range fixed.ReplicateTrees[:n] {
			pt, err := tree.ParseNewick(nw, 1)
			if err != nil {
				t.Fatal(err)
			}
			prefixTrees = append(prefixTrees, pt)
		}
		ref, err := Infer(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := tree.ParseNewick(ref.Tree, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantSup, err := bootstrap.SupportValues(rt, prefixTrees)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(adaptive.Supports, wantSup) {
			t.Fatalf("adaptive supports differ from fixed-B prefix supports:\n%v\n%v", adaptive.Supports, wantSup)
		}
		if prev != nil && !reflect.DeepEqual(adaptive, prev) {
			t.Fatal("bootstop outcome depends on worker count")
		}
		prev = adaptive
	}
}

// TestBootstrapAutoStopDivergent: a dataset whose replicates disagree
// keeps the criterion above the same cutoff, so the full budget runs.
func TestBootstrapAutoStopDivergent(t *testing.T) {
	d, err := Simulate(8, 1, 400, 75)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 1, MaxIterations: 2, Seed: 29, ParsimonyStartTree: true}
	res, err := BootstrapWithOptions(d, cfg, 8, BootstrapOptions{
		AutoStop: true, AutoStopEvery: 4, AutoStopCutoff: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("divergent bootstrap converged below cutoff — criterion too lax")
	}
	if res.Replicates != 8 {
		t.Fatalf("unconverged run used %d replicates, want the full budget 8", res.Replicates)
	}
}

// TestResampleDatasetPure: resampling is a pure function of (dataset,
// seed) — the property that makes local and service replicates
// bit-identical.
func TestResampleDatasetPure(t *testing.T) {
	d, err := Simulate(6, 2, 100, 74)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ResampleDataset(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResampleDataset(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Infer(a, Config{Ranks: 1, MaxIterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Infer(b, Config{Ranks: 1, MaxIterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Tree != rb.Tree || math.Float64bits(ra.LogLikelihood) != math.Float64bits(rb.LogLikelihood) {
		t.Fatal("same (dataset, seed) produced different replicates")
	}
}
