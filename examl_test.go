package examl

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	d, err := Simulate(10, 3, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.NTaxa() != 10 || d.NPartitions() != 3 || d.Sites() != 180 {
		t.Fatalf("dataset dims: %d taxa, %d parts, %d sites", d.NTaxa(), d.NPartitions(), d.Sites())
	}
	if d.Patterns() == 0 || d.Patterns() > d.Sites() {
		t.Fatalf("patterns = %d", d.Patterns())
	}
	res, err := Infer(d, Config{Ranks: 3, MaxIterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood >= 0 || math.IsNaN(res.LogLikelihood) {
		t.Fatalf("lnL = %g", res.LogLikelihood)
	}
	if !strings.HasSuffix(res.Tree, ";") {
		t.Fatalf("tree not Newick: %q", res.Tree[:40])
	}
	if res.Comm.TotalOps == 0 {
		t.Fatal("no communication metered")
	}
	if res.Ranks != 3 {
		t.Fatalf("ranks = %d", res.Ranks)
	}
	// Projection must work and shrink compute time with more ranks.
	p1, err := res.Project(48)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := res.Project(480)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ComputeSeconds >= p1.ComputeSeconds {
		t.Fatal("projection compute time did not shrink with ranks")
	}
	if p1.Nodes != 1 || p2.Nodes != 10 {
		t.Fatalf("nodes: %d, %d", p1.Nodes, p2.Nodes)
	}
}

func TestSchemesAgreeViaPublicAPI(t *testing.T) {
	d, err := Simulate(8, 2, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 2, MaxIterations: 1, Seed: 5}
	dec, err := Infer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = ForkJoin
	fj, err := Infer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(dec.LogLikelihood) != math.Float64bits(fj.LogLikelihood) {
		t.Fatalf("schemes disagree: %.15g vs %.15g", dec.LogLikelihood, fj.LogLikelihood)
	}
	rf, err := RobinsonFoulds(dec.Tree, fj.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Fatalf("RF distance between scheme results = %d", rf)
	}
	if fj.Comm.TotalBytes <= dec.Comm.TotalBytes {
		t.Fatalf("fork-join bytes %d ≤ decentralized %d", fj.Comm.TotalBytes, dec.Comm.TotalBytes)
	}
}

func TestThreadsViaPublicAPI(t *testing.T) {
	// Intra-rank threading (Config.Threads) must be invisible in the
	// results: bit-identical likelihood and topology under both schemes.
	// (Composition with HybridRanksPerNode is covered in the decentral
	// package; the hierarchical Allreduce itself re-associates the
	// cross-rank sum, so it cannot sit inside a bitwise comparison
	// against a flat-Allreduce reference.)
	d, err := Simulate(10, 2, 700, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{Decentralized, ForkJoin} {
		cfg := Config{Scheme: scheme, Ranks: 2, MaxIterations: 1, Seed: 9}
		ref, err := Infer(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Threads = 4
		got, err := Infer(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.LogLikelihood) != math.Float64bits(ref.LogLikelihood) {
			t.Errorf("%v: threaded lnL %.17g != serial %.17g", scheme, got.LogLikelihood, ref.LogLikelihood)
		}
		if got.Tree != ref.Tree {
			t.Errorf("%v: threaded topology differs from serial", scheme)
		}
	}
}

func TestBinaryRoundTripViaPublicAPI(t *testing.T) {
	d, err := Simulate(6, 2, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Patterns() != d.Patterns() || back.NTaxa() != d.NTaxa() {
		t.Fatal("binary round trip changed the dataset")
	}
}

func TestLoadPhylipWithPartitions(t *testing.T) {
	phy := `4 8
A ACGTACGT
B ACGTACGA
C ACGAACGT
D ACGAACGA
`
	scheme := "DNA, left = 1-4\nDNA, right = 5-8\n"
	d, err := LoadPhylip(strings.NewReader(phy), scheme)
	if err != nil {
		t.Fatal(err)
	}
	if d.NPartitions() != 2 || d.NTaxa() != 4 {
		t.Fatalf("dims: %d parts, %d taxa", d.NPartitions(), d.NTaxa())
	}
	if _, err := LoadPhylip(strings.NewReader("garbage"), ""); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadPhylip(strings.NewReader(phy), "DNA, x = 1-99"); err == nil {
		t.Error("out-of-range partition accepted")
	}
}

func TestCheckpointRestartViaPublicAPI(t *testing.T) {
	d, err := Simulate(8, 2, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	first, err := Infer(d, Config{Ranks: 2, MaxIterations: 2, Seed: 3, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	resumed, err := Infer(d, Config{Ranks: 2, MaxIterations: 4, Seed: 3, RestorePath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.LogLikelihood < first.LogLikelihood-1e-6 {
		t.Fatalf("resume regressed: %f < %f", resumed.LogLikelihood, first.LogLikelihood)
	}
	// Restoring against a different dataset must fail.
	other, err := Simulate(9, 2, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(other, Config{Ranks: 1, RestorePath: ckpt}); err == nil {
		t.Error("checkpoint accepted for wrong dataset")
	}
}

func TestPSRAndPerPartitionViaPublicAPI(t *testing.T) {
	d, err := Simulate(8, 2, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Infer(d, Config{
		Ranks:                     2,
		RateModel:                 PSR,
		PerPartitionBranchLengths: true,
		Distribution:              MPS,
		MaxIterations:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikelihood >= 0 {
		t.Fatalf("lnL = %g", res.LogLikelihood)
	}
}

func TestStringers(t *testing.T) {
	if Decentralized.String() != "decentralized" || ForkJoin.String() != "fork-join" {
		t.Error("Scheme.String broken")
	}
	if GAMMA.String() != "GAMMA" || PSR.String() != "PSR" {
		t.Error("RateModel.String broken")
	}
	if Cyclic.String() != "cyclic" || MPS.String() != "MPS" {
		t.Error("Distribution.String broken")
	}
}

func TestParsimonyStartBeatsRandomStart(t *testing.T) {
	d, err := Simulate(12, 2, 400, 33)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Ranks: 2, MaxIterations: 1, Seed: 4, SkipTopology: true}
	random, err := Infer(d, base)
	if err != nil {
		t.Fatal(err)
	}
	withPars := base
	withPars.ParsimonyStartTree = true
	pars, err := Infer(d, withPars)
	if err != nil {
		t.Fatal(err)
	}
	// With topology moves disabled, the starting topology decides the
	// score: the parsimony tree must be better on signal-rich data.
	if pars.LogLikelihood <= random.LogLikelihood {
		t.Fatalf("parsimony start lnL %f not better than random start %f",
			pars.LogLikelihood, random.LogLikelihood)
	}
}

func TestBootstrapViaPublicAPI(t *testing.T) {
	d, err := Simulate(8, 2, 250, 55)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Bootstrap(d, Config{Ranks: 2, MaxIterations: 2, Seed: 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != 5 || len(res.ReplicateTrees) != 5 {
		t.Fatalf("replicates = %d/%d", res.Replicates, len(res.ReplicateTrees))
	}
	// 8 taxa → 5 non-trivial bipartitions.
	if len(res.Supports) != 5 {
		t.Fatalf("%d supports", len(res.Supports))
	}
	for i, s := range res.Supports {
		if s < 0 || s > 1 {
			t.Fatalf("support %d = %g", i, s)
		}
	}
	if !strings.HasSuffix(res.BestTree, ");") {
		t.Fatalf("annotated tree malformed: %s", res.BestTree)
	}
	// On strong-signal simulated data, at least one split should have
	// full support.
	max := 0.0
	for _, s := range res.Supports {
		if s > max {
			max = s
		}
	}
	if max < 0.6 {
		t.Errorf("no well-supported split on clean data: %v", res.Supports)
	}
	if _, err := Bootstrap(d, Config{Ranks: 1}, 0); err == nil {
		t.Error("0 replicates accepted")
	}
}

func TestSubstitutionModelsViaPublicAPI(t *testing.T) {
	d, err := Simulate(8, 1, 400, 66)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Ranks: 2, MaxIterations: 1, Seed: 2, SkipTopology: true}
	lnls := map[SubstitutionModel]float64{}
	for _, m := range []SubstitutionModel{JCModel, K80Model, HKYModel, GTRModel} {
		cfg := base
		cfg.Substitution = m
		res, err := Infer(d, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		lnls[m] = res.LogLikelihood
	}
	// Nested models: each generalization can only improve the maximized
	// likelihood (up to optimizer slack).
	const slack = 0.5
	if !(lnls[K80Model] >= lnls[JCModel]-slack) {
		t.Errorf("K80 (%f) worse than nested JC (%f)", lnls[K80Model], lnls[JCModel])
	}
	if !(lnls[GTRModel] >= lnls[HKYModel]-slack) {
		t.Errorf("GTR (%f) worse than nested HKY (%f)", lnls[GTRModel], lnls[HKYModel])
	}
	if !(lnls[GTRModel] >= lnls[JCModel]-slack) {
		t.Errorf("GTR (%f) worse than nested JC (%f)", lnls[GTRModel], lnls[JCModel])
	}
	if JCModel.String() != "JC" || GTRModel.String() != "GTR" {
		t.Error("SubstitutionModel.String broken")
	}
}
