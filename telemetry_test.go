package examl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// TestTelemetryBitIdentity is the observability contract test: enabling
// telemetry (spans, counters, even the JSONL trace) must not change a
// single bit of the inference — same final log likelihood, same tree —
// for both schemes and across intra-rank thread counts. Timing is read
// out-of-band; nothing it touches feeds a likelihood or a reduction.
func TestTelemetryBitIdentity(t *testing.T) {
	d, err := Simulate(10, 3, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{Decentralized, ForkJoin} {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/T=%d", scheme, threads), func(t *testing.T) {
				base := Config{
					Scheme:        scheme,
					Ranks:         3,
					Threads:       threads,
					MaxIterations: 2,
					Seed:          11,
				}
				plain, err := Infer(d, base)
				if err != nil {
					t.Fatal(err)
				}
				if plain.Telemetry != nil {
					t.Fatal("telemetry report present without Config.Telemetry")
				}

				instrumented := base
				instrumented.Telemetry = true
				var trace bytes.Buffer
				instrumented.TraceWriter = &trace
				traced, err := Infer(d, instrumented)
				if err != nil {
					t.Fatal(err)
				}

				if math.Float64bits(traced.LogLikelihood) != math.Float64bits(plain.LogLikelihood) {
					t.Errorf("lnL diverged: telemetry %v vs plain %v", traced.LogLikelihood, plain.LogLikelihood)
				}
				if traced.Tree != plain.Tree {
					t.Error("tree diverged under telemetry")
				}
				if traced.Iterations != plain.Iterations {
					t.Errorf("iterations diverged: %d vs %d", traced.Iterations, plain.Iterations)
				}

				rep := traced.Telemetry
				if rep == nil {
					t.Fatal("no telemetry report despite Config.Telemetry")
				}
				if rep.Ranks != 3 {
					t.Errorf("report ranks = %d, want 3", rep.Ranks)
				}
				var kernelOps int64
				for _, k := range rep.Kernels {
					kernelOps += k.Ops
				}
				if kernelOps == 0 {
					t.Error("no kernel spans recorded")
				}
				if rep.ImbalanceRatio < 1 {
					t.Errorf("imbalance ratio %v < 1 (max/mean cannot be)", rep.ImbalanceRatio)
				}
				if rep.CommFraction <= 0 || rep.CommFraction >= 1 {
					t.Errorf("comm fraction %v outside (0,1)", rep.CommFraction)
				}
				if rep.Counters["iterations"] != int64(traced.Iterations) {
					t.Errorf("iterations counter %d != result %d", rep.Counters["iterations"], traced.Iterations)
				}
				if threads > 1 && rep.PoolUtilization <= 0 {
					t.Error("threaded run reported no pool utilization")
				}
			})
		}
	}
}

// TestTelemetryTraceIsValidJSONL checks every line the TraceWriter sink
// emits parses as a JSON span event.
func TestTelemetryTraceIsValidJSONL(t *testing.T) {
	d, err := Simulate(8, 2, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	_, err = Infer(d, Config{Ranks: 2, MaxIterations: 1, Seed: 5, TraceWriter: &trace})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	perfEvents := 0
	repeatEvents := 0
	batchEvents := 0
	metaEvents := 0
	iterEvents := 0
	sc := bufio.NewScanner(&trace)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev struct {
			Ev      string `json:"ev"`
			Rank    int    `json:"rank"`
			Kind    string `json:"kind"`
			Class   string `json:"class"`
			DurNS   int64  `json:"dur_ns"`
			FastOps int64  `json:"fast_ops"`
			Cols    int64  `json:"cols_computed"`
			Disp    int64  `json:"dispatches"`
			Ranks   int    `json:"ranks"`
			StartNS int64  `json:"start_unix_ns"`
			Iter    int    `json:"iter"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v: %s", lines, err, sc.Text())
		}
		if ev.Rank < 0 || ev.Rank >= 2 {
			t.Fatalf("line %d: bad rank %+v", lines, ev)
		}
		switch ev.Ev {
		case "meta":
			// One-time stream header: rank count plus the wall-clock epoch
			// phytrace uses to align traces from different processes.
			metaEvents++
			if lines != 1 {
				t.Fatalf("meta event on line %d, want line 1", lines)
			}
			if ev.Ranks != 2 || ev.StartNS <= 0 {
				t.Fatalf("line %d: malformed meta %+v", lines, ev)
			}
		case "iter":
			// Per-iteration marker for critical-path windowing.
			iterEvents++
			if ev.Iter < 1 {
				t.Fatalf("line %d: malformed iter %+v", lines, ev)
			}
		case "span":
			if ev.Class == "" {
				t.Fatalf("line %d: malformed span %+v", lines, ev)
			}
			if ev.Kind != "kernel" && ev.Kind != "collective" {
				t.Fatalf("line %d: unknown span kind %q", lines, ev.Kind)
			}
		case "perf":
			// Kernel fast-path summary, emitted once per rank at engine
			// close; the DNA fast paths must have fired on this dataset.
			perfEvents++
			if ev.FastOps <= 0 {
				t.Fatalf("line %d: perf event without fast-path ops %+v", lines, ev)
			}
		case "repeats":
			// Site-repeat compression summary, emitted once per rank at
			// engine close; columns were computed on this dataset.
			repeatEvents++
			if ev.Cols <= 0 {
				t.Fatalf("line %d: repeats event without computed columns %+v", lines, ev)
			}
		case "batch":
			// Fused small-partition batching summary, emitted once per rank
			// at engine close; this dataset's partitions sit far below the
			// default threshold, so batched dispatches must have fired.
			batchEvents++
			if ev.Disp <= 0 {
				t.Fatalf("line %d: batch event without dispatches %+v", lines, ev)
			}
		default:
			t.Fatalf("line %d: unknown event type %q", lines, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("TraceWriter produced no events")
	}
	if perfEvents != 2 {
		t.Fatalf("expected one perf event per rank, got %d", perfEvents)
	}
	if repeatEvents != 2 {
		t.Fatalf("expected one repeats event per rank, got %d", repeatEvents)
	}
	if batchEvents != 2 {
		t.Fatalf("expected one batch event per rank, got %d", batchEvents)
	}
	if metaEvents != 1 {
		t.Fatalf("expected exactly one meta header, got %d", metaEvents)
	}
	if iterEvents == 0 {
		t.Fatal("expected per-iteration markers in the trace")
	}
}
