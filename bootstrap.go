package examl

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bootstrap"
	"repro/internal/phyrun"
	"repro/internal/tree"
)

// BootstrapResult is the outcome of a bootstrap analysis.
type BootstrapResult struct {
	// BestTree is the reference ML tree in Newick with integer percent
	// support values as inner-node labels.
	BestTree string
	// Supports are the per-bipartition support fractions (0..1) in the
	// reference tree's bipartition order.
	Supports []float64
	// Replicates is the number of bootstrap replicates used (under
	// adaptive bootstopping, the converged prefix).
	Replicates int
	// ReplicateTrees are the per-replicate ML trees (Newick).
	ReplicateTrees []string
	// ConsensusTree is the extended majority-rule consensus of the
	// replicate trees (Newick), with per-split supports in
	// ConsensusSupports (0 marks arbitrary resolutions of
	// multifurcations).
	ConsensusTree string
	// ConsensusSupports aligns with the consensus tree's bipartitions.
	ConsensusSupports []float64
	// Converged reports whether adaptive bootstopping stopped the run
	// before the full replicate budget.
	Converged bool
}

// BootstrapOptions tunes Bootstrap beyond the plain fixed-B run.
type BootstrapOptions struct {
	// Workers bounds concurrent searches (default 1 — sequential, like
	// the original implementation). Results are identical at any value.
	Workers int
	// AutoStop enables adaptive bootstopping: the replicate count
	// becomes a ceiling, checked every AutoStopEvery replicates against
	// the AutoStopCutoff frequency criterion (zero values use the
	// phyrun defaults: every 10, cutoff 0.03).
	AutoStop       bool
	AutoStopEvery  int
	AutoStopCutoff float64
	// ManifestPath makes the run resumable (docs/ORCHESTRATOR.md).
	ManifestPath string
	// LegacySeeding reproduces the pre-orchestrator behavior: replicate
	// datasets drawn sequentially from one generator seeded with
	// cfg.Seed^0x0b00f5 and replicate searches seeded cfg.Seed+r+1.
	// Kept as an oracle for migration tests; the default splittable
	// seeding is order-independent and is what the service backend and
	// resumed campaigns reproduce. Incompatible with the other options.
	LegacySeeding bool
}

// Bootstrap runs a nonparametric bootstrap: a reference ML search on the
// original dataset, then `replicates` searches on site-resampled
// replicates (deterministic given cfg.Seed), and maps the replicate
// bipartition frequencies onto the reference tree as support values —
// the standard RAxML workflow, under either parallelization scheme.
// It is a one-start campaign on the phyrun orchestrator; use
// BootstrapWithOptions for concurrency, bootstopping, or resume.
func Bootstrap(d *Dataset, cfg Config, replicates int) (*BootstrapResult, error) {
	return BootstrapWithOptions(d, cfg, replicates, BootstrapOptions{})
}

// BootstrapWithOptions is Bootstrap with scheduling options.
func BootstrapWithOptions(d *Dataset, cfg Config, replicates int, opts BootstrapOptions) (*BootstrapResult, error) {
	if replicates < 1 {
		return nil, fmt.Errorf("examl: need at least 1 bootstrap replicate")
	}
	if opts.LegacySeeding {
		if opts.Workers > 1 || opts.AutoStop || opts.ManifestPath != "" {
			return nil, fmt.Errorf("examl: legacy seeding is sequential-only (no workers, autostop, or manifest)")
		}
		return bootstrapLegacy(d, cfg, replicates)
	}

	plan := phyrun.Plan{
		Seed:       cfg.Seed,
		Replicates: replicates,
		// Pin the reference search to cfg.Seed so the reference tree is
		// exactly Infer(d, cfg), as it always was.
		StartSeeds: []int64{cfg.Seed},
	}
	if cfg.ParsimonyStartTree {
		plan.ParsimonyStarts = 1
	} else {
		plan.RandomStarts = 1
	}
	if opts.AutoStop {
		plan.Bootstop = &phyrun.BootstopConfig{
			CheckEvery: opts.AutoStopEvery,
			Cutoff:     opts.AutoStopCutoff,
		}
	}
	res, err := phyrun.Run(context.Background(), phyrun.Config{
		Plan:         plan,
		Runner:       &LocalCampaignRunner{Dataset: d, Config: cfg},
		Workers:      opts.Workers,
		ManifestPath: opts.ManifestPath,
	})
	if err != nil {
		return nil, err
	}
	return &BootstrapResult{
		BestTree:          res.AnnotatedTree,
		Supports:          res.Supports,
		Replicates:        len(res.ReplicateTrees),
		ReplicateTrees:    res.ReplicateTrees,
		ConsensusTree:     res.ConsensusTree,
		ConsensusSupports: res.ConsensusSupports,
		Converged:         res.Converged,
	}, nil
}

// LocalCampaignRunner executes phyrun campaign tasks in-process over
// Infer — the orchestrator's local backend. Replicate tasks resample
// the dataset from the task's seed before searching; because resampling
// is a pure function of (dataset, seed), the result is bit-identical to
// the same task run by a service worker.
type LocalCampaignRunner struct {
	// Dataset is the base alignment.
	Dataset *Dataset
	// Config is the search template; Seed and ParsimonyStartTree are
	// overwritten per task.
	Config Config
}

// Run executes one task.
func (r *LocalCampaignRunner) Run(ctx context.Context, t phyrun.Task) (*phyrun.TaskResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := r.Config
	cfg.Seed = t.Seed
	cfg.ParsimonyStartTree = t.Parsimony
	d := r.Dataset
	if t.Kind == phyrun.TaskReplicate {
		var err error
		if d, err = ResampleDataset(d, t.ResampleSeed); err != nil {
			return nil, err
		}
	}
	res, err := Infer(d, cfg)
	if err != nil {
		return nil, err
	}
	return &phyrun.TaskResult{
		Tree:          res.Tree,
		LogLikelihood: res.LogLikelihood,
		LnLBits:       fmt.Sprintf("%016x", math.Float64bits(res.LogLikelihood)),
		Iterations:    res.Iterations,
		WallSeconds:   res.WallSeconds,
	}, nil
}

// bootstrapLegacy is the original sequential implementation, retained
// verbatim as the LegacySeeding oracle: replicate r's dataset depends
// on every draw before it, so replicates cannot be re-run in isolation
// — the limitation that motivated splittable per-task seeds.
func bootstrapLegacy(d *Dataset, cfg Config, replicates int) (*BootstrapResult, error) {
	ref, err := Infer(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("examl: reference search: %w", err)
	}
	refTree, err := tree.ParseNewick(ref.Tree, 1)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b00f5))
	out := &BootstrapResult{Replicates: replicates}
	repTrees := make([]*tree.Tree, 0, replicates)
	for r := 0; r < replicates; r++ {
		resampled, err := bootstrap.Resample(d.d, rng)
		if err != nil {
			return nil, err
		}
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r) + 1
		res, err := Infer(&Dataset{d: resampled}, repCfg)
		if err != nil {
			return nil, fmt.Errorf("examl: replicate %d: %w", r, err)
		}
		rt, err := tree.ParseNewick(res.Tree, 1)
		if err != nil {
			return nil, err
		}
		repTrees = append(repTrees, rt)
		out.ReplicateTrees = append(out.ReplicateTrees, res.Tree)
	}
	out.Supports, err = bootstrap.SupportValues(refTree, repTrees)
	if err != nil {
		return nil, err
	}
	out.BestTree, err = bootstrap.AnnotatedNewick(refTree, out.Supports)
	if err != nil {
		return nil, err
	}
	cons, csup, err := bootstrap.Consensus(repTrees, 0.5)
	if err != nil {
		return nil, err
	}
	out.ConsensusTree = cons.Newick()
	out.ConsensusSupports = csup
	return out, nil
}

// MajorityConsensus builds the extended majority-rule consensus of a set
// of Newick trees over the same taxa, returning the consensus Newick and
// the per-bipartition support fractions.
func MajorityConsensus(newicks []string, minFraction float64) (string, []float64, error) {
	var trees []*tree.Tree
	for i, nw := range newicks {
		t, err := tree.ParseNewick(nw, 1)
		if err != nil {
			return "", nil, fmt.Errorf("examl: tree %d: %w", i, err)
		}
		trees = append(trees, t)
	}
	cons, sup, err := bootstrap.Consensus(trees, minFraction)
	if err != nil {
		return "", nil, err
	}
	return cons.Newick(), sup, nil
}

// ResampleDataset exposes bootstrap resampling for callers that manage
// their own replicate searches: the replicate is a pure function of
// (dataset, seed), the contract both campaign backends rely on.
func ResampleDataset(d *Dataset, seed int64) (*Dataset, error) {
	r, err := bootstrap.Resample(d.d, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &Dataset{d: r}, nil
}
