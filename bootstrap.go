package examl

import (
	"fmt"
	"math/rand"

	"repro/internal/bootstrap"
	"repro/internal/tree"
)

// BootstrapResult is the outcome of a bootstrap analysis.
type BootstrapResult struct {
	// BestTree is the reference ML tree in Newick with integer percent
	// support values as inner-node labels.
	BestTree string
	// Supports are the per-bipartition support fractions (0..1) in the
	// reference tree's bipartition order.
	Supports []float64
	// Replicates is the number of bootstrap replicates run.
	Replicates int
	// ReplicateTrees are the per-replicate ML trees (Newick).
	ReplicateTrees []string
	// ConsensusTree is the extended majority-rule consensus of the
	// replicate trees (Newick), with per-split supports in
	// ConsensusSupports (0 marks arbitrary resolutions of
	// multifurcations).
	ConsensusTree string
	// ConsensusSupports aligns with the consensus tree's bipartitions.
	ConsensusSupports []float64
}

// Bootstrap runs a nonparametric bootstrap: a reference ML search on the
// original dataset, then `replicates` searches on site-resampled
// replicates (deterministic given cfg.Seed), and maps the replicate
// bipartition frequencies onto the reference tree as support values —
// the standard RAxML workflow, under either parallelization scheme.
func Bootstrap(d *Dataset, cfg Config, replicates int) (*BootstrapResult, error) {
	if replicates < 1 {
		return nil, fmt.Errorf("examl: need at least 1 bootstrap replicate")
	}
	ref, err := Infer(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("examl: reference search: %w", err)
	}
	refTree, err := tree.ParseNewick(ref.Tree, 1)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0b00f5))
	out := &BootstrapResult{Replicates: replicates}
	repTrees := make([]*tree.Tree, 0, replicates)
	for r := 0; r < replicates; r++ {
		resampled, err := bootstrap.Resample(d.d, rng)
		if err != nil {
			return nil, err
		}
		repCfg := cfg
		repCfg.Seed = cfg.Seed + int64(r) + 1
		res, err := Infer(&Dataset{d: resampled}, repCfg)
		if err != nil {
			return nil, fmt.Errorf("examl: replicate %d: %w", r, err)
		}
		rt, err := tree.ParseNewick(res.Tree, 1)
		if err != nil {
			return nil, err
		}
		repTrees = append(repTrees, rt)
		out.ReplicateTrees = append(out.ReplicateTrees, res.Tree)
	}
	out.Supports, err = bootstrap.SupportValues(refTree, repTrees)
	if err != nil {
		return nil, err
	}
	out.BestTree, err = bootstrap.AnnotatedNewick(refTree, out.Supports)
	if err != nil {
		return nil, err
	}
	cons, csup, err := bootstrap.Consensus(repTrees, 0.5)
	if err != nil {
		return nil, err
	}
	out.ConsensusTree = cons.Newick()
	out.ConsensusSupports = csup
	return out, nil
}

// MajorityConsensus builds the extended majority-rule consensus of a set
// of Newick trees over the same taxa, returning the consensus Newick and
// the per-bipartition support fractions.
func MajorityConsensus(newicks []string, minFraction float64) (string, []float64, error) {
	var trees []*tree.Tree
	for i, nw := range newicks {
		t, err := tree.ParseNewick(nw, 1)
		if err != nil {
			return "", nil, fmt.Errorf("examl: tree %d: %w", i, err)
		}
		trees = append(trees, t)
	}
	cons, sup, err := bootstrap.Consensus(trees, minFraction)
	if err != nil {
		return "", nil, err
	}
	return cons.Newick(), sup, nil
}

// ResampleDataset exposes bootstrap resampling for callers that manage
// their own replicate searches.
func ResampleDataset(d *Dataset, seed int64) (*Dataset, error) {
	r, err := bootstrap.Resample(d.d, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &Dataset{d: r}, nil
}
