package examl

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/distrib"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/search"
)

// FailurePlan injects rank failures into a decentralized inference to
// demonstrate the fault-tolerance property of the scheme: because every
// rank replicates the full search state, survivors re-distribute the data
// among themselves and continue — no master holds irreplaceable state.
type FailurePlan struct {
	// FailRanks is how many ranks die.
	FailRanks int
	// FailAfterIteration is the outer-loop iteration after which the
	// failure strikes (default 1).
	FailAfterIteration int
}

// RecoveryReport describes how a failure-injected run recovered.
type RecoveryReport struct {
	// SurvivorRanks is the rank count after the failure.
	SurvivorRanks int
	// ResumedFromIteration is the iteration the survivors resumed at.
	ResumedFromIteration int
	// LogLikelihoodAtFailure is the replicated score at the failure
	// point.
	LogLikelihoodAtFailure float64
}

// InferWithFailures runs a decentralized inference that loses
// plan.FailRanks ranks mid-search and completes on the survivors. Only
// the Decentralized scheme supports this: under ForkJoin the loss of the
// master is fatal by construction (the asymmetry the paper calls out).
func InferWithFailures(d *Dataset, cfg Config, plan FailurePlan) (*Result, *RecoveryReport, error) {
	if cfg.Scheme != Decentralized {
		return nil, nil, fmt.Errorf("examl: fault tolerance requires the Decentralized scheme (fork-join master loss is fatal)")
	}
	if cfg.Ranks <= 0 {
		cfg.Ranks = 2
	}
	het := model.Gamma
	if cfg.RateModel == PSR {
		het = model.PSR
	}
	strategy := distrib.Cyclic
	if cfg.Distribution == MPS {
		strategy = distrib.MPS
	}
	res, rep, err := fault.Run(d.d, fault.Plan{
		Ranks:              cfg.Ranks,
		FailRanks:          plan.FailRanks,
		FailAfterIteration: plan.FailAfterIteration,
		Strategy:           strategy,
		Threads:            cfg.Threads,
		Search: search.Config{
			Het:                  het,
			Subst:                substOf(cfg.Substitution),
			PerPartitionBranches: cfg.PerPartitionBranchLengths,
			Epsilon:              cfg.Epsilon,
			SPRRadius:            cfg.SPRRadius,
			MaxIterations:        cfg.MaxIterations,
			Seed:                 cfg.Seed,
			StartTree:            cfg.StartTree,
			SkipTopology:         cfg.SkipTopology,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return &Result{
			Tree:                      res.Tree.Newick(),
			LogLikelihood:             res.LnL,
			PerPartitionLogLikelihood: res.PerPartitionLnL,
			Iterations:                res.Iterations,
			Ranks:                     rep.SurvivorRanks,
			trace:                     cluster.Trace{MeasuredRanks: rep.SurvivorRanks},
		}, &RecoveryReport{
			SurvivorRanks:          rep.SurvivorRanks,
			ResumedFromIteration:   rep.CheckpointIteration,
			LogLikelihoodAtFailure: rep.CheckpointLnL,
		}, nil
}
