package examl

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/decentral"
	"repro/internal/fault"
	"repro/internal/forkjoin"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// NetConfig places one OS process in a multi-process world connected
// over TCP (internal/mpinet). Every process of a run must use the same
// Size, Addr, and Nonce; Rank must be unique. Config.Ranks is ignored
// in network mode — the world size is Size.
type NetConfig struct {
	// Rank is this process's rank, 0 ≤ Rank < Size. Rank 0 listens on
	// Addr; all others dial it.
	Rank int
	// Size is the world size (number of processes).
	Size int
	// Addr is the rendezvous address (host:port of rank 0).
	Addr string
	// Nonce identifies the run: the rendezvous rejects processes
	// carrying a different nonce, so a stale worker from a previous
	// launch cannot join.
	Nonce uint64
	// MaxRecoveries is the survivor-recovery budget for the
	// decentralized scheme: how many times the world may re-form after
	// peer failures before giving up. 0 means a lost peer fails the run.
	// Fork-join runs ignore it (a lost process is fatal there — the
	// asymmetry the paper calls out).
	MaxRecoveries int
	// HeartbeatInterval and HeartbeatTimeout tune failure detection;
	// zero values use the mpinet defaults.
	HeartbeatInterval, HeartbeatTimeout time.Duration
	// RecoveryWindow bounds how long the recovery coordinator waits for
	// survivors (and replacements) to re-register before sealing the new
	// world; zero uses the mpinet default (2 × HeartbeatTimeout).
	RecoveryWindow time.Duration
	// JoinEpoch, when > 0, makes this process a replacement worker: it
	// skips the initial rendezvous and joins the world directly at
	// recovery epoch JoinEpoch, claiming Rank (the dead process's rank).
	// The service daemon uses this to migrate a job onto a warm spare at
	// the original world size, which keeps the final result bit-identical
	// to an undisturbed run (a shrunken world would change the summation
	// order). Decentralized scheme only.
	JoinEpoch int
	// OnRecovered, when set, is invoked after every successful recovery
	// with the rank and world size this process holds in the new epoch
	// and the iteration the search resumed from. Observational only.
	OnRecovered func(rank, size, epoch, resumedIteration int)
}

// NetResult is the per-process outcome of a network run.
type NetResult struct {
	// Result is the inference outcome. Under the decentralized scheme it
	// is present — and bit-identical, including the communication
	// accounting — on every rank; under fork-join it is nil on worker
	// ranks (only the master holds the tree).
	Result *Result
	// Rank and Size are this process's position in the world that
	// completed the run (they differ from NetConfig after a recovery).
	Rank, Size int
	// Epochs is the number of worlds this process participated in
	// (1 = no failure).
	Epochs int
	// Recovered reports whether the run resumed from a replica
	// checkpoint after losing peers.
	Recovered bool
	// ResumedIteration is the iteration the recovery resumed from.
	ResumedIteration int
}

// InferNet runs this process's rank of a multi-process inference over
// TCP. It is the network-transport counterpart of Infer: the same
// search, the same deterministic collectives, the same Table-I
// accounting — but each rank is an OS process, launched by
// `examl -net-launch` or by hand with matching -net-* flags.
//
// Under the decentralized scheme, peer failures detected by the mpinet
// heartbeats trigger survivor recovery (up to nc.MaxRecoveries): the
// world re-forms on the recovery port, the newest replica checkpoint is
// broadcast, and the search resumes on the reduced world.
func InferNet(d *Dataset, cfg Config, nc NetConfig) (*NetResult, error) {
	if nc.Size < 1 {
		return nil, fmt.Errorf("examl: net world size %d", nc.Size)
	}
	if nc.Rank < 0 || nc.Rank >= nc.Size {
		return nil, fmt.Errorf("examl: net rank %d outside world of %d", nc.Rank, nc.Size)
	}
	if nc.Addr == "" {
		return nil, fmt.Errorf("examl: net mode needs a rendezvous address")
	}
	scfg, err := searchConfig(cfg)
	if err != nil {
		return nil, err
	}
	var collector *telemetry.Collector
	if cfg.Telemetry || cfg.TraceWriter != nil {
		// One recorder: the collector describes this process alone.
		collector = telemetry.NewCollector(1, int(mpi.NumCommClasses), cfg.TraceWriter)
		collector.SetJob(cfg.TraceLabel)
	}
	netCfg := mpinet.Config{
		Rank:              nc.Rank,
		Size:              nc.Size,
		Addr:              nc.Addr,
		Nonce:             nc.Nonce,
		HeartbeatInterval: nc.HeartbeatInterval,
		HeartbeatTimeout:  nc.HeartbeatTimeout,
		RecoveryWindow:    nc.RecoveryWindow,
	}

	switch cfg.Scheme {
	case Decentralized:
		res, stats, report, err := fault.RunNet(d.d, fault.NetPlan{
			Net: netCfg,
			Run: decentral.RunConfig{
				Search:             scfg,
				Strategy:           strategyOf(cfg),
				HybridRanksPerNode: cfg.HybridRanksPerNode,
				Threads:            cfg.Threads,
				Telemetry:          collector,
				DisableRepeats:     cfg.DisableRepeats,
				RepeatsMaxMem:      cfg.RepeatsMaxMem,
				DisableSoA:         cfg.DisableSoA,
				BatchSites:         cfg.BatchSites,
			},
			MaxRecoveries: nc.MaxRecoveries,
			JoinEpoch:     nc.JoinEpoch,
			OnRecovered:   nc.OnRecovered,
		})
		if err != nil {
			return nil, err
		}
		return &NetResult{
			Result:           netResult(res, stats.Comm, stats.Wall, report.FinalSize, statsTrace(stats), collector, cfg),
			Rank:             report.FinalRank,
			Size:             report.FinalSize,
			Epochs:           report.Epochs,
			Recovered:        report.Recovered,
			ResumedIteration: report.ResumedIteration,
		}, nil

	case ForkJoin:
		if nc.JoinEpoch > 0 {
			return nil, fmt.Errorf("examl: replacement joins (JoinEpoch) require the decentralized scheme")
		}
		tr, err := mpinet.Connect(netCfg)
		if err != nil {
			return nil, err
		}
		comm := mpi.NewComm(tr, nc.Rank, nc.Size, mpi.NewMeter())
		defer comm.Close()
		res, stats, err := forkjoin.RunOnComm(comm, d.d, forkjoin.RunConfig{
			Search:         scfg,
			Strategy:       strategyOf(cfg),
			Threads:        cfg.Threads,
			Telemetry:      collector,
			DisableRepeats: cfg.DisableRepeats,
			RepeatsMaxMem:  cfg.RepeatsMaxMem,
			DisableSoA:     cfg.DisableSoA,
			BatchSites:     cfg.BatchSites,
		})
		if err != nil {
			return nil, err
		}
		out := &NetResult{Rank: nc.Rank, Size: nc.Size, Epochs: 1}
		if res != nil {
			out.Result = netResult(res, stats.Comm, stats.Wall, nc.Size, cluster.Trace{
				Comm:           stats.Comm,
				MaxRankColumns: stats.MaxRankColumns,
				TotalColumns:   stats.TotalColumns,
				MeasuredRanks:  stats.Ranks,
				CLVBytesTotal:  stats.CLVBytesTotal,
			}, collector, cfg)
		}
		return out, nil

	default:
		return nil, fmt.Errorf("examl: unknown scheme %d", cfg.Scheme)
	}
}

func statsTrace(s *decentral.RunStats) cluster.Trace {
	return cluster.Trace{
		Comm:           s.Comm,
		MaxRankColumns: s.MaxRankColumns,
		TotalColumns:   s.TotalColumns,
		MeasuredRanks:  s.Ranks,
		CLVBytesTotal:  s.CLVBytesTotal,
	}
}

// netResult assembles the public Result exactly as Infer does.
func netResult(res *search.Result, comm mpi.Snapshot, wall time.Duration, ranks int, trace cluster.Trace, collector *telemetry.Collector, cfg Config) *Result {
	return &Result{
		Tree:                      res.Tree.Newick(),
		LogLikelihood:             res.LnL,
		PerPartitionLogLikelihood: res.PerPartitionLnL,
		Iterations:                res.Iterations,
		Comm:                      makeCommReport(comm),
		WallSeconds:               wall.Seconds(),
		Ranks:                     ranks,
		Telemetry:                 finalizeTelemetry(collector, wall, cfg.Threads, comm),
		trace:                     trace,
	}
}
