// Quickstart: simulate a small partitioned DNA dataset and infer a
// maximum-likelihood tree with the de-centralized (ExaML) scheme on four
// simulated MPI ranks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 16 taxa, 4 gene partitions of 300 bp each.
	dataset, err := examl.Simulate(16, 4, 300, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d taxa, %d partitions, %d sites compressed to %d patterns\n",
		dataset.NTaxa(), dataset.NPartitions(), dataset.Sites(), dataset.Patterns())

	result, err := examl.Infer(dataset, examl.Config{
		Ranks:         4,
		MaxIterations: 5,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlog likelihood: %.4f after %d search iterations (%.2fs wall)\n",
		result.LogLikelihood, result.Iterations, result.WallSeconds)
	fmt.Printf("communication:  %d collectives, %d bytes total\n",
		result.Comm.TotalOps, result.Comm.TotalBytes)
	fmt.Printf("\nbest tree:\n%s\n", result.Tree)

	// Project the run onto the paper's cluster at 8 nodes (384 cores).
	proj, err := result.Project(384)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected on the paper's cluster: %d nodes, %.3fs (%.3fs compute + %.3fs comm)\n",
		proj.Nodes, proj.Seconds, proj.ComputeSeconds, proj.CommSeconds)
}
