// Partitioned analysis: the whole-genome use case from the paper's
// introduction (1KITE-style). A many-partition dataset is analyzed with
// monolithic per-partition data distribution (the -Q / MPS option), an
// independent Γ shape per gene, and individual per-partition branch
// lengths (the -M option) — the configuration that stresses the fork-join
// scheme hardest and that the de-centralized scheme was built for.
//
//	go run ./examples/partitioned
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 24 taxa, 40 genes of 200 bp — per-gene evolutionary heterogeneity
	// is built into the generator, so per-partition parameters matter.
	dataset, err := examl.Simulate(24, 40, 200, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole-genome style dataset: %d taxa, %d gene partitions, %d sites\n",
		dataset.NTaxa(), dataset.NPartitions(), dataset.Sites())

	cfg := examl.Config{
		Ranks:                     6,
		Distribution:              examl.MPS, // -Q: whole genes per rank
		PerPartitionBranchLengths: true,      // -M: per-gene branch lengths
		MaxIterations:             2,
		Seed:                      3,
	}

	fmt.Println("\n--- de-centralized scheme (ExaML) ---")
	dec, err := examl.Infer(dataset, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printRun(dec)

	fmt.Println("\n--- fork-join scheme (RAxML-Light) ---")
	cfg.Scheme = examl.ForkJoin
	fj, err := examl.Infer(dataset, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printRun(fj)

	rf, err := examl.RobinsonFoulds(dec.Tree, fj.Tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame search algorithm, same answer: RF distance = %d, ΔlnL = %.2e\n",
		rf, dec.LogLikelihood-fj.LogLikelihood)
	fmt.Printf("but the fork-join scheme moved %.1f× more bytes (%d vs %d)\n",
		float64(fj.Comm.TotalBytes)/float64(dec.Comm.TotalBytes),
		fj.Comm.TotalBytes, dec.Comm.TotalBytes)
}

func printRun(r *examl.Result) {
	fmt.Printf("lnL %.4f in %d iterations, %.2fs wall\n", r.LogLikelihood, r.Iterations, r.WallSeconds)
	for _, c := range r.Comm.Classes {
		fmt.Printf("  %-22s %10d bytes (%5.1f%%)\n", c.Name, c.Bytes, 100*c.ByteShare)
	}
}
