// Fault tolerance: the paper's §V observation made concrete. The
// de-centralized scheme replicates the complete search state on every
// rank, so when ranks die the survivors re-distribute the data among
// themselves and keep going. This example kills 3 of 8 ranks after the
// first search iteration and finishes the inference on the remaining 5.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dataset, err := examl.Simulate(14, 6, 150, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d taxa, %d partitions, %d patterns\n",
		dataset.NTaxa(), dataset.NPartitions(), dataset.Patterns())
	fmt.Println("starting on 8 ranks; 3 will fail after iteration 1 ...")

	result, recovery, err := examl.InferWithFailures(dataset,
		examl.Config{
			Ranks:         8,
			MaxIterations: 4,
			Seed:          5,
		},
		examl.FailurePlan{
			FailRanks:          3,
			FailAfterIteration: 1,
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfailure struck after iteration %d (replicated lnL at that point: %.4f)\n",
		recovery.ResumedFromIteration, recovery.LogLikelihoodAtFailure)
	fmt.Printf("%d survivors re-distributed the data and completed the search\n", recovery.SurvivorRanks)
	fmt.Printf("final lnL: %.4f after %d total iterations\n", result.LogLikelihood, result.Iterations)

	// The same failure under the fork-join scheme is fatal by design.
	_, _, err = examl.InferWithFailures(dataset,
		examl.Config{Scheme: examl.ForkJoin, Ranks: 8},
		examl.FailurePlan{FailRanks: 1})
	fmt.Printf("\nfork-join under the same failure: %v\n", err)
}
