// Communication trace: reproduce the paper's core measurement on your own
// data sizes. The same search runs under both parallelization schemes
// while every collective operation is metered; the side-by-side profile
// shows exactly where the fork-join bytes go (traversal descriptors,
// model-parameter broadcasts) and how the partition count inflates them —
// the phenomenon behind the paper's Table I and Figure 4.
//
//	go run ./examples/commtrace
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Printf("%8s | %14s %14s | %7s | %s\n",
		"parts", "forkjoin B", "decentral B", "ratio", "fork-join descriptor share")
	for _, parts := range []int{2, 8, 32} {
		dataset, err := examl.Simulate(12, parts, 80, 21)
		if err != nil {
			log.Fatal(err)
		}
		var bytes [2]int64
		var descShare float64
		for i, scheme := range []examl.Scheme{examl.ForkJoin, examl.Decentralized} {
			res, err := examl.Infer(dataset, examl.Config{
				Scheme:        scheme,
				Ranks:         4,
				MaxIterations: 1,
				Seed:          2,
			})
			if err != nil {
				log.Fatal(err)
			}
			bytes[i] = res.Comm.TotalBytes
			if scheme == examl.ForkJoin {
				for _, c := range res.Comm.Classes {
					if c.Name == "traversal-descriptor" {
						descShare = c.ByteShare
					}
				}
			}
		}
		fmt.Printf("%8d | %14d %14d | %6.1fx | %5.1f%%\n",
			parts, bytes[0], bytes[1], float64(bytes[0])/float64(bytes[1]), 100*descShare)
	}
	fmt.Println("\nThe fork-join scheme ships a traversal descriptor (with per-partition")
	fmt.Println("branch-length payloads) before essentially every parallel region; the")
	fmt.Println("de-centralized scheme ships none of it — only Allreduce results.")
}
