// Bootstrap analysis: quantify the confidence in each branch of the best
// tree. Sites are resampled with replacement per partition, one ML tree
// is inferred per replicate (all of it running on the de-centralized
// engine), and each split of the best tree is annotated with the fraction
// of replicates supporting it. A majority-rule consensus of the
// replicates is printed as well.
//
//	go run ./examples/bootstrap
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dataset, err := examl.Simulate(10, 3, 300, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d taxa, %d partitions, %d sites\n",
		dataset.NTaxa(), dataset.NPartitions(), dataset.Sites())

	const replicates = 10
	fmt.Printf("running 1 reference + %d bootstrap replicate searches ...\n\n", replicates)
	res, err := examl.Bootstrap(dataset, examl.Config{
		Ranks:         4,
		MaxIterations: 3,
		Seed:          5,
	}, replicates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("best tree with bootstrap support values (%):")
	fmt.Println(res.BestTree)
	fmt.Printf("\nper-split supports: ")
	for _, s := range res.Supports {
		fmt.Printf("%3.0f%% ", 100*s)
	}
	fmt.Printf("\n\nmajority-rule consensus of the %d replicates:\n%s\n",
		replicates, res.ConsensusTree)
}
