package examl

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/decentral"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/search"
)

// The network integration tests re-exec this test binary as real OS
// processes, one per rank, connected over loopback TCP. TestMain
// dispatches: when EXAML_NET_TEST_ROLE is set the process is a worker
// rank and runs netTestWorker instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("EXAML_NET_TEST_ROLE") != "" {
		netTestWorker()
		return
	}
	os.Exit(m.Run())
}

// Shared recipe: every process — parent and workers — must build the
// identical dataset and search configuration for bit-identity to hold.
const (
	netTestTaxa     = 10
	netTestParts    = 2
	netTestGeneLen  = 60
	netTestDataSeed = 33
	netTestSeed     = 7
)

func netTestDataset() (*Dataset, error) {
	return Simulate(netTestTaxa, netTestParts, netTestGeneLen, netTestDataSeed)
}

func netTestInferConfig() Config {
	return Config{Seed: netTestSeed, MaxIterations: 3}
}

// netTestSearchConfig mirrors netTestInferConfig at the internal layer,
// for the fault-injection roles that drive decentral/fault directly.
func netTestSearchConfig() search.Config {
	return search.Config{Het: model.Gamma, Seed: netTestSeed, MaxIterations: 3}
}

// workerOut is what each worker process reports on stdout as JSON.
type workerOut struct {
	Rank             int
	Size             int
	Epochs           int
	Recovered        bool
	ResumedIteration int
	LnLBits          uint64
	Tree             string
	Comm             json.RawMessage
}

func netTestWorker() {
	role := os.Getenv("EXAML_NET_TEST_ROLE")
	rank := netTestEnvInt("EXAML_NET_TEST_RANK")
	size := netTestEnvInt("EXAML_NET_TEST_SIZE")
	addr := os.Getenv("EXAML_NET_TEST_ADDR")
	nonce, err := strconv.ParseUint(os.Getenv("EXAML_NET_TEST_NONCE"), 10, 64)
	if err != nil {
		netTestDie("bad nonce: %v", err)
	}
	d, err := netTestDataset()
	if err != nil {
		netTestDie("simulate: %v", err)
	}

	netCfg := mpinet.Config{
		Rank:              rank,
		Size:              size,
		Addr:              addr,
		Nonce:             nonce,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		RecoveryWindow:    800 * time.Millisecond,
	}

	switch role {
	case "plain":
		// Full public-API path, identical to what cmd/examl -net-rank runs.
		nr, err := InferNet(d, netTestInferConfig(), NetConfig{
			Rank: rank, Size: size, Addr: addr, Nonce: nonce,
		})
		if err != nil {
			netTestDie("InferNet: %v", err)
		}
		commJSON, err := json.Marshal(nr.Result.Comm)
		if err != nil {
			netTestDie("marshal comm: %v", err)
		}
		netTestEmit(workerOut{
			Rank:    nr.Rank,
			Size:    nr.Size,
			Epochs:  nr.Epochs,
			LnLBits: math.Float64bits(nr.Result.LogLikelihood),
			Tree:    nr.Result.Tree,
			Comm:    commJSON,
		})

	case "victim":
		// Joins the world, completes iteration 1, then dies abruptly —
		// no bye frame, no connection teardown courtesy: os.Exit.
		tr, err := mpinet.Connect(netCfg)
		if err != nil {
			netTestDie("connect: %v", err)
		}
		c := mpi.NewComm(tr, rank, size, mpi.NewMeter())
		scfg := netTestSearchConfig()
		scfg.OnIteration = func(_ *search.Searcher, iter int, _ float64) {
			if iter == 1 {
				os.Exit(3)
			}
		}
		decentral.RunOnComm(c, d.d, decentral.RunConfig{Search: scfg})
		netTestDie("victim survived its own death")

	case "survivor":
		res, _, report, err := fault.RunNet(d.d, fault.NetPlan{
			Net:           netCfg,
			Run:           decentral.RunConfig{Search: netTestSearchConfig()},
			MaxRecoveries: 1,
		})
		if err != nil {
			netTestDie("RunNet: %v", err)
		}
		netTestEmit(workerOut{
			Rank:             report.FinalRank,
			Size:             report.FinalSize,
			Epochs:           report.Epochs,
			Recovered:        report.Recovered,
			ResumedIteration: report.ResumedIteration,
			LnLBits:          math.Float64bits(res.LnL),
			Tree:             res.Tree.Newick(),
		})

	default:
		netTestDie("unknown role %q", role)
	}
}

func netTestEnvInt(key string) int {
	n, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		netTestDie("bad %s: %v", key, err)
	}
	return n
}

func netTestDie(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "net worker: "+format+"\n", args...)
	os.Exit(1)
}

func netTestEmit(o workerOut) {
	if err := json.NewEncoder(os.Stdout).Encode(o); err != nil {
		netTestDie("emit: %v", err)
	}
	os.Exit(0)
}

// netTestSpawn re-execs this test binary as one worker rank.
func netTestSpawn(role string, rank, size int, addr string, nonce uint64) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"EXAML_NET_TEST_ROLE="+role,
		"EXAML_NET_TEST_RANK="+strconv.Itoa(rank),
		"EXAML_NET_TEST_SIZE="+strconv.Itoa(size),
		"EXAML_NET_TEST_ADDR="+addr,
		"EXAML_NET_TEST_NONCE="+strconv.FormatUint(nonce, 10),
	)
	cmd.Stderr = os.Stderr
	return cmd
}

func reserveLoopbackAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestNetProcessesMatchInProcess launches 4 real OS processes over
// loopback TCP and asserts the run is bit-identical to the in-process
// 4-rank run: the tree string, the Float64bits of the log likelihood,
// and the per-CommClass metered byte counts (Table I) on every rank.
func TestNetProcessesMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process network test")
	}
	const size = 4
	d, err := netTestDataset()
	if err != nil {
		t.Fatal(err)
	}
	cfg := netTestInferConfig()
	cfg.Ranks = size
	ref, err := Infer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refComm, err := json.Marshal(ref.Comm)
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	outs := make([][]byte, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = netTestSpawn("plain", r, size, addr, 4242).Output()
		}(r)
	}
	wg.Wait()

	for r := 0; r < size; r++ {
		if errs[r] != nil {
			t.Fatalf("worker rank %d: %v", r, errs[r])
		}
		var o workerOut
		if err := json.Unmarshal(outs[r], &o); err != nil {
			t.Fatalf("worker rank %d output %q: %v", r, outs[r], err)
		}
		if o.Rank != r || o.Size != size || o.Epochs != 1 {
			t.Errorf("worker rank %d reported rank=%d size=%d epochs=%d", r, o.Rank, o.Size, o.Epochs)
		}
		if o.LnLBits != math.Float64bits(ref.LogLikelihood) {
			t.Errorf("rank %d lnL %v not bit-identical to in-process %v",
				r, math.Float64frombits(o.LnLBits), ref.LogLikelihood)
		}
		if o.Tree != ref.Tree {
			t.Errorf("rank %d tree differs from in-process run", r)
		}
		if string(o.Comm) != string(refComm) {
			t.Errorf("rank %d comm accounting differs:\n tcp: %s\n ref: %s", r, o.Comm, refComm)
		}
	}
}

// TestNetProcessDeathRecovers kills one of four worker processes after
// its first iteration (abrupt os.Exit — no goodbye) and asserts the
// three survivors detect the loss, re-form the world, resume from the
// replica checkpoint, and finish with the bit-identical result the
// in-process failure-injection harness produces for the same scenario.
func TestNetProcessDeathRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process network test")
	}
	const (
		size   = 4
		victim = 1
	)
	d, err := netTestDataset()
	if err != nil {
		t.Fatal(err)
	}
	ref, refReport, err := fault.Run(d.d, fault.Plan{
		Ranks:              size,
		FailRanks:          1,
		FailAfterIteration: 1,
		Search:             netTestSearchConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}

	addr := reserveLoopbackAddr(t)
	outs := make([][]byte, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		role := "survivor"
		if r == victim {
			role = "victim"
		}
		wg.Add(1)
		go func(r int, role string) {
			defer wg.Done()
			outs[r], errs[r] = netTestSpawn(role, r, size, addr, 4343).Output()
		}(r, role)
	}
	wg.Wait()

	var exitErr *exec.ExitError
	if errs[victim] == nil {
		t.Fatalf("victim exited cleanly; want exit code 3")
	} else if !errors.As(errs[victim], &exitErr) || exitErr.ExitCode() != 3 {
		t.Fatalf("victim: %v, want exit code 3", errs[victim])
	}

	finalRanks := map[int]bool{}
	for r := 0; r < size; r++ {
		if r == victim {
			continue
		}
		if errs[r] != nil {
			t.Fatalf("survivor rank %d: %v", r, errs[r])
		}
		var o workerOut
		if err := json.Unmarshal(outs[r], &o); err != nil {
			t.Fatalf("survivor rank %d output %q: %v", r, outs[r], err)
		}
		if !o.Recovered || o.Epochs != 2 {
			t.Errorf("survivor %d: recovered=%v epochs=%d, want recovery in epoch 2", r, o.Recovered, o.Epochs)
		}
		if o.Size != size-1 {
			t.Errorf("survivor %d finished in world of %d, want %d", r, o.Size, size-1)
		}
		if o.ResumedIteration != refReport.CheckpointIteration {
			t.Errorf("survivor %d resumed from iteration %d, want %d", r, o.ResumedIteration, refReport.CheckpointIteration)
		}
		if o.LnLBits != math.Float64bits(ref.LnL) {
			t.Errorf("survivor %d lnL %v not bit-identical to in-process recovery %v",
				r, math.Float64frombits(o.LnLBits), ref.LnL)
		}
		if want := ref.Tree.Newick(); o.Tree != want {
			t.Errorf("survivor %d tree differs from in-process recovery", r)
		}
		if finalRanks[o.Rank] {
			t.Errorf("final rank %d claimed twice", o.Rank)
		}
		finalRanks[o.Rank] = true
	}
}
