package examl

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus the ablation benchmarks DESIGN.md calls out and
// kernel microbenchmarks. Domain metrics (traffic volumes, speedup ratios,
// projected times) are attached via b.ReportMetric so `go test -bench`
// output doubles as the reproduction record.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"

	"repro/internal/decentral"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/forkjoin"
	"repro/internal/likelihood"
	"repro/internal/model"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/msa"
	"repro/internal/parsimony"
	"repro/internal/search"
	"repro/internal/seqgen"
	"repro/internal/threadpool"
	"repro/internal/traversal"
	"repro/internal/tree"
)

// ---------- Table I ----------

// BenchmarkTable1 regenerates the Table I traffic decomposition (one
// sub-benchmark per configuration column).
func BenchmarkTable1(b *testing.B) {
	sc := experiments.Small()
	for b.Loop() {
		res, err := experiments.Table1(sc)
		if err != nil {
			b.Fatal(err)
		}
		for i, col := range res.Columns {
			_ = col
			b.ReportMetric(res.Columns[i].SharePercent[3], "descriptor_share_cfg"+string(rune('0'+i)))
		}
	}
}

// ---------- Figure 3 ----------

// BenchmarkFig3 regenerates the Figure 3 scaling study and reports the
// PSR speedups at 8 and 32 nodes (paper: 6.9× and 26.9×).
func BenchmarkFig3(b *testing.B) {
	sc := experiments.Small()
	for b.Loop() {
		res, err := experiments.Fig3(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.PSR {
			if p.Nodes == 8 {
				b.ReportMetric(p.Speedup, "PSR_speedup_8nodes")
			}
			if p.Nodes == 32 {
				b.ReportMetric(p.Speedup, "PSR_speedup_32nodes")
			}
		}
		b.ReportMetric(res.Gamma32Ratio, "gamma32_raxml/examl")
	}
}

// ---------- Figure 4 ----------

func benchmarkFig4(b *testing.B, perPartition bool) {
	sc := experiments.Small()
	for b.Loop() {
		res, err := experiments.Fig4(sc, perPartition)
		if err != nil {
			b.Fatal(err)
		}
		// Report the Γ ratio at the largest partition count — the
		// paper's headline number for this figure.
		for _, p := range res.Points {
			if !p.PSR && p.Partitions == sc.PartCounts[len(sc.PartCounts)-1] {
				b.ReportMetric(p.SpeedupRatio, "gamma_maxparts_ratio")
				b.ReportMetric(float64(p.RAxMLLightBytes)/float64(p.ExaMLBytes), "gamma_maxparts_byteratio")
			}
		}
	}
}

// BenchmarkFig4a regenerates Figure 4(a) (joint branch lengths).
func BenchmarkFig4a(b *testing.B) { benchmarkFig4(b, false) }

// BenchmarkFig4b regenerates Figure 4(b) (per-partition branch lengths).
func BenchmarkFig4b(b *testing.B) { benchmarkFig4(b, true) }

// ---------- scheme comparison (wall clock on this machine) ----------

func benchDataset(b *testing.B, taxa, parts, geneLen int) *msa.Dataset {
	b.Helper()
	res, err := seqgen.Generate(seqgen.PartitionedGenes(taxa, parts, geneLen, 99))
	if err != nil {
		b.Fatal(err)
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSchemeDecentral measures a full decentralized inference.
func BenchmarkSchemeDecentral(b *testing.B) {
	d := benchDataset(b, 12, 8, 100)
	cfg := search.Config{Het: model.Gamma, Seed: 1, MaxIterations: 1}
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := decentral.Run(d, decentral.RunConfig{Search: cfg, Ranks: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemeForkJoin measures the identical inference under the
// fork-join scheme.
func BenchmarkSchemeForkJoin(b *testing.B) {
	d := benchDataset(b, 12, 8, 100)
	cfg := search.Config{Het: model.Gamma, Seed: 1, MaxIterations: 1}
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := forkjoin.Run(d, forkjoin.RunConfig{Search: cfg, Ranks: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- ablation: deterministic vs unordered Allreduce ----------

// BenchmarkAblationReduceOrder compares the deterministic Allreduce
// (Reduce + Bcast) against naive recursive doubling, and reports whether
// the naive variant produced cross-rank bit divergence — the failure mode
// §III-B's requirement guards against.
func BenchmarkAblationReduceOrder(b *testing.B) {
	const ranks = 8
	const vecLen = 256
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float64, ranks)
	for r := range inputs {
		vec := make([]float64, vecLen)
		for i := range vec {
			vec[i] = rng.NormFloat64() * float64(uint64(1)<<uint(rng.Intn(60)))
		}
		inputs[r] = vec
	}
	b.Run("deterministic", func(b *testing.B) {
		w := mpi.NewWorld(ranks)
		for b.Loop() {
			w.Run(func(c *mpi.Comm) {
				c.Allreduce(inputs[c.Rank()], mpi.OpSum, mpi.ClassLikelihoodEval)
			})
		}
	})
	b.Run("unordered", func(b *testing.B) {
		w := mpi.NewWorld(ranks)
		diverged := 0
		for b.Loop() {
			outs := make([][]float64, ranks)
			w.Run(func(c *mpi.Comm) {
				outs[c.Rank()] = c.AllreduceUnordered(inputs[c.Rank()], mpi.OpSum, mpi.ClassLikelihoodEval)
			})
			for r := 1; r < ranks; r++ {
				for i := range outs[0] {
					if outs[r][i] != outs[0][i] {
						diverged++
						break
					}
				}
			}
		}
		b.ReportMetric(float64(diverged), "rank_divergences")
	})
}

// ---------- ablation: cyclic vs MPS distribution ----------

// BenchmarkAblationDistribution compares the two data-distribution
// strategies on a many-partition dataset: MPS eliminates the per-partition
// P(t) setup overhead that cyclic distribution replicates onto every rank
// (the up-to-10× effect of the paper's reference [24]).
func BenchmarkAblationDistribution(b *testing.B) {
	d := benchDataset(b, 10, 48, 40)
	cfg := search.Config{Het: model.Gamma, Seed: 2, MaxIterations: 1, SkipTopology: true}
	for _, strat := range []distrib.Strategy{distrib.Cyclic, distrib.MPS} {
		b.Run(strat.String(), func(b *testing.B) {
			var cols int64
			for b.Loop() {
				_, stats, err := decentral.Run(d, decentral.RunConfig{Search: cfg, Ranks: 4, Strategy: strat})
				if err != nil {
					b.Fatal(err)
				}
				cols = stats.TotalColumns
			}
			b.ReportMetric(float64(cols), "kernel_columns")
		})
	}
}

// ---------- kernel microbenchmarks ----------

func benchKernel(b *testing.B, het model.Heterogeneity) (*likelihood.Kernel, *tree.Tree, []likelihood.Step) {
	b.Helper()
	return benchKernelSized(b, het, 5000)
}

func benchKernelSized(b *testing.B, het model.Heterogeneity, nSites int) (*likelihood.Kernel, *tree.Tree, []likelihood.Step) {
	b.Helper()
	return benchKernelDup(b, het, nSites, false)
}

func benchKernelDup(b *testing.B, het model.Heterogeneity, nSites int, dupHeavy bool) (*likelihood.Kernel, *tree.Tree, []likelihood.Step) {
	b.Helper()
	res, err := seqgen.Generate(seqgen.Config{
		NTaxa: 32,
		Specs: []seqgen.Spec{{Name: "g", NSites: nSites, Alpha: 0.8}},
		Seed:  5,
	})
	if err != nil {
		b.Fatal(err)
	}
	if dupHeavy {
		seqgen.AddCladeRepeats(res, 0.95, 11)
	}
	ds, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		b.Fatal(err)
	}
	pd := ds.Parts[0]
	par, err := model.NewParams(het, pd.Freqs, pd.NPatterns())
	if err != nil {
		b.Fatal(err)
	}
	// The duplicate-heavy workload evaluates the true tree (the clades
	// whose columns repeat are its clades — the regime of a search that
	// has converged near the right topology); the others score a random
	// topology.
	tr := res.Tree
	if !dupHeavy {
		tr = tree.NewRandom(ds.Names, 1, rand.New(rand.NewSource(3)))
	}
	k, err := likelihood.NewKernel(pd, par, tr.NInner())
	if err != nil {
		b.Fatal(err)
	}
	steps := traversal.ForEdge(tr, tr.Tip(0), 0, true)
	k.Traverse(steps)
	return k, tr, steps
}

// BenchmarkKernelNewviewGamma measures the Γ CLV kernel.
func BenchmarkKernelNewviewGamma(b *testing.B) {
	k, _, steps := benchKernel(b, model.Gamma)
	b.ResetTimer()
	for b.Loop() {
		k.Traverse(steps)
	}
	b.ReportMetric(float64(k.NPatterns()*len(steps)), "columns/op")
}

// BenchmarkKernelNewviewPSR measures the PSR CLV kernel (4× less data).
func BenchmarkKernelNewviewPSR(b *testing.B) {
	k, _, steps := benchKernel(b, model.PSR)
	b.ResetTimer()
	for b.Loop() {
		k.Traverse(steps)
	}
}

// BenchmarkKernelEvaluateGamma measures the root-evaluation kernel.
func BenchmarkKernelEvaluateGamma(b *testing.B) {
	k, tr, _ := benchKernel(b, model.Gamma)
	p := traversal.Ref(tr, tr.Tip(0))
	q := traversal.Ref(tr, tr.Tip(0).Back)
	b.ResetTimer()
	for b.Loop() {
		k.Evaluate(p, q, 0.1)
	}
}

// BenchmarkKernelDerivativesGamma measures the Newton derivative kernel
// after sum-table preparation (the per-iteration cost of branch
// optimization).
func BenchmarkKernelDerivativesGamma(b *testing.B) {
	k, tr, _ := benchKernel(b, model.Gamma)
	p := traversal.Ref(tr, tr.Tip(0))
	q := traversal.Ref(tr, tr.Tip(0).Back)
	k.PrepareDerivatives(p, q)
	b.ResetTimer()
	for b.Loop() {
		k.Derivatives(0.1)
	}
}

// ---------- §V hybrid: intra-rank kernel threading ----------

// gammaFlopsPerColumn is the rough floating-point cost of one Γ CLV
// column update (4 rates × 4 states × two length-4 dot products plus the
// scaler product) — the estimate behind the flops/op benchmark metric
// and the flops_per_sec column of BENCH_kernels.json.
const gammaFlopsPerColumn = 4 * 4 * 15

// gammaBytesPerColumn is the main-memory traffic of one Γ CLV column
// update: two child CLV columns read plus one written, 4 rates × 4
// states × 8 bytes each. Together with gammaFlopsPerColumn it gives the
// arithmetic intensity (~1.25 flops/byte) that places the kernel on a
// roofline plot — benchjson derives bytes_per_sec and
// arithmetic_intensity from the bytes/op and flops/op metrics.
const gammaBytesPerColumn = 3 * 4 * 4 * 8

// BenchmarkKernelThreadsGamma measures the Γ kernels (full traversal +
// evaluation) at increasing intra-rank thread counts — the single-rank
// speedup axis of the §V hybrid scheme. Results are bit-identical across
// the sub-benchmarks; only wall clock changes. The reported speedup
// metric is serial ns/op over this thread count's ns/op; it tracks
// physical core count, so it saturates at GOMAXPROCS (also reported, so
// a flat curve on single-core CI is distinguishable from a regression).
func BenchmarkKernelThreadsGamma(b *testing.B) {
	var serialNs float64
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("T=%d", threads), func(b *testing.B) {
			k, tr, steps := benchKernel(b, model.Gamma)
			nb := threadpool.NumBlocks(k.NPatterns())
			if nb < 2 {
				b.Fatalf("pattern range spans %d block(s); dataset too small to exercise the pool", nb)
			}
			pool := threadpool.New(threads)
			defer pool.Close()
			k.SetPool(pool)
			p := traversal.Ref(tr, tr.Tip(0))
			q := traversal.Ref(tr, tr.Tip(0).Back)
			b.ResetTimer()
			for b.Loop() {
				k.Traverse(steps)
				k.Evaluate(p, q, 0.1)
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if threads == 1 {
				serialNs = nsPerOp
			}
			if serialNs > 0 && nsPerOp > 0 {
				b.ReportMetric(serialNs/nsPerOp, "speedup")
			}
			b.ReportMetric(float64(threads), "threads")
			b.ReportMetric(float64(nb), "blocks")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			cols := k.NPatterns() * (len(steps) + 1) // traversal + evaluation columns
			b.ReportMetric(float64(cols*gammaFlopsPerColumn), "flops/op")
			b.ReportMetric(float64(cols*gammaBytesPerColumn), "bytes/op")
		})
	}
}

// BenchmarkKernelLayoutGamma measures the SoA (default) CLV layout
// against the AoS ablation (-no-soa) on the serial Γ traversal. The SoA
// planes make the innermost loop stride-1 over sites in every array it
// touches, which is what lets the compiler (and the hardware
// prefetcher) stream the kernel; the AoS row is the baseline and the
// SoA row reports its speedup. Both layouts produce bit-identical CLVs
// (docs/DETERMINISM.md §8).
func BenchmarkKernelLayoutGamma(b *testing.B) {
	var aosNs float64
	for _, soa := range []bool{false, true} {
		mode := "aos"
		lay := likelihood.LayoutAoS
		if soa {
			mode, lay = "soa", likelihood.LayoutSoA
		}
		b.Run(mode, func(b *testing.B) {
			k, _, steps := benchKernel(b, model.Gamma)
			k.SetLayout(lay)
			b.ResetTimer()
			for b.Loop() {
				k.Traverse(steps)
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if !soa {
				aosNs = nsPerOp
			} else if aosNs > 0 && nsPerOp > 0 {
				b.ReportMetric(aosNs/nsPerOp, "speedup")
			}
			cols := k.NPatterns() * len(steps)
			b.ReportMetric(float64(cols*gammaFlopsPerColumn), "flops/op")
			b.ReportMetric(float64(cols*gammaBytesPerColumn), "bytes/op")
		})
	}
}

// BenchmarkKernelBatch measures fused small-partition batching
// (docs/PERFORMANCE.md §6) on its target workload: many partitions,
// each small enough to fuse (the batched row runs with a raised
// `-batch-sites` threshold so all 64 qualify), driven through a
// threaded rank's Newton derivative step — the per-iteration cost of
// every branch-length optimization, where per-partition compute is
// small enough that pool synchronization is a first-order cost.
// The unbatched row pays one
// pool dispatch per partition per operation; the batched row detaches
// every partition from the pool and dispatches them all as items of a
// single pool call, so the synchronization cost is paid once. Results
// are bit-identical (docs/DETERMINISM.md §8); each batched row reports
// its speedup over the paired unbatched baseline. The win is
// dispatch-overhead elimination, so it shows even at GOMAXPROCS=1; the
// PSR rows show it strongest, because the PSR derivative does a quarter
// of the Γ arithmetic against the same per-partition dispatch cost.
func BenchmarkKernelBatch(b *testing.B) {
	const parts = 64
	const threshold = 4 * DefaultBatchSites
	d := benchDataset(b, 24, parts, 900)
	counts := make([]int, d.NPartitions())
	for i, p := range d.Parts {
		counts[i] = p.NPatterns()
		// Each partition must span more than one pool block (so the
		// unbatched row pays a real fork-join dispatch per partition,
		// not the single-block inline fast path) yet sit below the
		// fusion threshold the batched row runs with.
		if counts[i] <= 2*threadpool.BlockSize || counts[i] >= threshold {
			b.Fatalf("partition %d has %d patterns; need in (%d, %d)",
				i, counts[i], 2*threadpool.BlockSize, threshold)
		}
	}
	assign, err := distrib.Compute(distrib.Cyclic, counts, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, het := range []model.Heterogeneity{model.Gamma, model.PSR} {
		var unbatchedNs float64
		for _, batched := range []bool{false, true} {
			mode := "unbatched"
			batchSites := -1
			if batched {
				// Raised threshold (-batch-sites 1024): every partition
				// sits below it, so they all fuse.
				mode, batchSites = "batched", threshold
			}
			b.Run(het.String()+"/"+mode, func(b *testing.B) {
				world := mpi.NewWorld(1)
				eng, err := decentral.NewEngine(world.Comm(0), d, assign, decentral.EngineConfig{
					Het: het, Subst: model.GTR, Threads: 4, BatchSites: batchSites,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				tr := tree.NewRandom(d.Names, 1, rand.New(rand.NewSource(5)))
				desc := traversal.Build(tr, tr.Tip(0), true)
				ts := []float64{0.1}
				// Warm: CLVs + sum tables + scratch, so the loop measures
				// the repeated Newton step alone.
				eng.Evaluate(desc)
				eng.PrepareBranch(desc)
				eng.BranchDerivatives(ts)
				b.ResetTimer()
				for b.Loop() {
					eng.BranchDerivatives(ts)
				}
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if !batched {
					unbatchedNs = nsPerOp
				} else if unbatchedNs > 0 && nsPerOp > 0 {
					b.ReportMetric(unbatchedNs/nsPerOp, "speedup")
				}
				b.ReportMetric(float64(parts), "partitions")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}

// ---------- specialized fast paths (docs/PERFORMANCE.md) ----------

// innerOnly filters a traversal to its inner-inner steps (both operands
// CLVs) — the workload the tip fast paths cannot touch.
func innerOnly(steps []likelihood.Step) []likelihood.Step {
	var out []likelihood.Step
	for _, st := range steps {
		if !st.A.Tip && !st.B.Tip {
			out = append(out, st)
		}
	}
	return out
}

// BenchmarkKernelFastPathGamma measures the tip-specialized Γ newview
// kernels against the generic path on two workloads: the full traversal
// of a 32-taxon tree (tip-heavy — most vertices have a tip child) and
// its inner-inner steps only (inner-heavy — the fast path never fires).
// Both variants produce bit-identical CLVs; the fast rows report their
// speedup over the paired generic row.
func BenchmarkKernelFastPathGamma(b *testing.B) {
	type workload struct {
		name  string
		strip bool
	}
	for _, w := range []workload{{"tip-heavy", false}, {"inner-heavy", true}} {
		var genericNs float64
		for _, fast := range []bool{false, true} {
			mode := "generic"
			if fast {
				mode = "fast"
			}
			b.Run(w.name+"/"+mode, func(b *testing.B) {
				// 1200 sites keeps the three CLVs of one newview inside
				// the L2 cache, so the benchmark measures arithmetic
				// (which the fast path removes), not CLV write bandwidth
				// (which it cannot).
				k, _, steps := benchKernelSized(b, model.Gamma, 1200)
				if w.strip {
					steps = innerOnly(steps)
					if len(steps) == 0 {
						b.Fatal("traversal has no inner-inner steps")
					}
				}
				k.SetFastPath(fast)
				k.SetPCache(fast)
				b.ResetTimer()
				for b.Loop() {
					k.Traverse(steps)
				}
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if !fast {
					genericNs = nsPerOp
				} else if genericNs > 0 && nsPerOp > 0 {
					b.ReportMetric(genericNs/nsPerOp, "speedup")
				}
				b.ReportMetric(float64(k.NPatterns()*len(steps)), "columns/op")
			})
		}
	}
}

// BenchmarkKernelRepeatsGamma measures subtree site-repeat compression
// (docs/PERFORMANCE.md) against the plain Γ kernels on two alignments:
// duplicate-heavy, where AddCladeRepeats injects the clade-level column
// redundancy real conserved genes show (most inner CLV columns become
// byte copies of an already computed class representative), and
// tip-heavy i.i.d. columns, where few subtree patterns repeat and the
// per-node density gate falls back to the plain path (so that row
// documents that the class-tracking overhead is negligible, not a
// speedup). The duplicate-heavy shape runs under both CLV layouts
// because the two mechanisms trade off (docs/PERFORMANCE.md §6):
// repeat compression's win is proportional to the per-column compute
// it skips, and the SoA layout makes that compute cheaper while its
// strided columns make the duplicate copy dearer — so the aos rows
// show the compression headroom and the soa rows the default-config
// truth. All modes produce bit-identical CLVs; repeats=on rows report
// speedup over the paired repeats=off row plus the fraction of CLV
// columns served by copy.
func BenchmarkKernelRepeatsGamma(b *testing.B) {
	for _, w := range []struct {
		name string
		dup  bool
		lay  likelihood.Layout
	}{
		{"duplicate-heavy/soa", true, likelihood.LayoutSoA},
		{"duplicate-heavy/aos", true, likelihood.LayoutAoS},
		{"tip-heavy/soa", false, likelihood.LayoutSoA},
	} {
		var offNs float64
		for _, on := range []bool{false, true} {
			mode := "repeats=off"
			if on {
				mode = "repeats=on"
			}
			b.Run(w.name+"/"+mode, func(b *testing.B) {
				k, _, steps := benchKernelDup(b, model.Gamma, 1200, w.dup)
				k.SetLayout(w.lay)
				k.SetRepeats(on)
				k.Traverse(steps) // warm: store the per-node class tables
				b.ResetTimer()
				for b.Loop() {
					k.Traverse(steps)
				}
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if !on {
					offNs = nsPerOp
				} else if offNs > 0 && nsPerOp > 0 {
					b.ReportMetric(offNs/nsPerOp, "speedup")
				}
				if st := k.RepeatStats(); on && st.ColsComputed+st.ColsSaved > 0 {
					b.ReportMetric(float64(st.ColsSaved)/float64(st.ColsComputed+st.ColsSaved), "cols_saved_frac")
				}
				b.ReportMetric(float64(k.NPatterns()*len(steps)), "columns/op")
			})
		}
	}
}

// BenchmarkKernelPCacheGamma measures the P-matrix cache on a small
// partition (where per-call P(t) setup is a visible fraction of kernel
// time, the regime the paper's MPS distribution targets). Every
// iteration replays the same traversal, so after the first the cache
// serves every branch length; the cached row reports its speedup over
// the uncached row.
func BenchmarkKernelPCacheGamma(b *testing.B) {
	var offNs float64
	for _, cached := range []bool{false, true} {
		mode := "cache=off"
		if cached {
			mode = "cache=on"
		}
		b.Run(mode, func(b *testing.B) {
			k, _, steps := benchKernelSized(b, model.Gamma, 64)
			k.SetPCache(cached)
			b.ResetTimer()
			for b.Loop() {
				k.Traverse(steps)
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if !cached {
				offNs = nsPerOp
			} else if offNs > 0 && nsPerOp > 0 {
				b.ReportMetric(offNs/nsPerOp, "speedup")
			}
		})
	}
}

// BenchmarkHybridGrid sweeps the full §V configuration space — ranks ×
// threads-per-rank with node-grouped hierarchical Allreduce — on one
// decentralized search iteration. This is the reproduction recipe for
// the paper's hybrid experiment (EXPERIMENTS.md).
func BenchmarkHybridGrid(b *testing.B) {
	d := benchDataset(b, 12, 2, 1500)
	cfg := search.Config{Het: model.Gamma, Seed: 1, MaxIterations: 1}
	for _, ranks := range []int{1, 2, 4} {
		for _, threads := range []int{1, 2, 4} {
			name := fmt.Sprintf("ranks=%d/T=%d", ranks, threads)
			b.Run(name, func(b *testing.B) {
				rc := decentral.RunConfig{
					Search:  cfg,
					Ranks:   ranks,
					Threads: threads,
				}
				if ranks > 1 {
					rc.HybridRanksPerNode = 2
				}
				var cols int64
				for b.Loop() {
					_, stats, err := decentral.Run(d, rc)
					if err != nil {
						b.Fatal(err)
					}
					cols = stats.TotalColumns
				}
				b.ReportMetric(float64(ranks*threads), "total_workers")
				b.ReportMetric(float64(cols*gammaFlopsPerColumn), "flops/op")
			})
		}
	}
}

// ---------- batched all-branch gradients (docs/PERFORMANCE.md) ----------

// BenchmarkAllBranchGradient measures the batched all-branch gradient
// smoother against the per-branch Newton oracle on a branch-length
// optimization workload (SkipTopology, smoothing-dominated) run over
// real loopback TCP — one mpinet endpoint per rank, so every
// branch-length collective is a socket round trip, the transport
// regime the batching targets. Both rows produce bit-identical results
// (docs/DETERMINISM.md §7); the batched row reports its wall-clock
// speedup over the oracle row plus the metered branch-length Allreduce
// count of each, which drops from one per branch per Newton iteration
// to one per iteration of a sweep.
func BenchmarkAllBranchGradient(b *testing.B) {
	d := benchDataset(b, 24, 4, 60)
	base := search.Config{Het: model.Gamma, Seed: 1, MaxIterations: 1, SkipTopology: true, SmoothPasses: 8}
	const ranks = 3
	nonce := uint64(0)
	var oracleNs float64
	for _, batched := range []bool{false, true} {
		mode := "oracle"
		if batched {
			mode = "batched"
		}
		b.Run(mode, func(b *testing.B) {
			cfg := base
			cfg.DisableBatchedGradients = !batched
			var blOps int64
			for b.Loop() {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				addr := ln.Addr().String()
				ln.Close()
				nonce++
				var wg sync.WaitGroup
				errs := make([]error, ranks)
				var rank0Ops int64
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						tr, err := mpinet.Connect(mpinet.Config{Rank: rank, Size: ranks, Addr: addr, Nonce: nonce})
						if err != nil {
							errs[rank] = err
							return
						}
						c := mpi.NewComm(tr, rank, ranks, mpi.NewMeter())
						defer c.Close()
						_, stats, err := decentral.RunOnComm(c, d, decentral.RunConfig{Search: cfg})
						errs[rank] = err
						if rank == 0 && stats != nil {
							rank0Ops = stats.Comm.Ops[mpi.ClassBranchLength]
						}
					}(r)
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						b.Fatalf("rank %d: %v", r, err)
					}
				}
				blOps = rank0Ops
			}
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if !batched {
				oracleNs = nsPerOp
			} else if oracleNs > 0 && nsPerOp > 0 {
				b.ReportMetric(oracleNs/nsPerOp, "speedup")
			}
			b.ReportMetric(float64(blOps), "bl_allreduces")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// ---------- binary format vs PHYLIP ----------

// BenchmarkBinaryVsPhylip compares loading the same dataset from the
// binary alignment format vs parsing PHYLIP text — the speedup the
// paper's §V binary-format plan is after.
func BenchmarkBinaryVsPhylip(b *testing.B) {
	res, err := seqgen.Generate(seqgen.PartitionedGenes(24, 8, 500, 17))
	if err != nil {
		b.Fatal(err)
	}
	var phy bytes.Buffer
	if err := msa.WritePhylip(&phy, res.Alignment); err != nil {
		b.Fatal(err)
	}
	d, err := msa.Compress(res.Alignment, res.Partitions)
	if err != nil {
		b.Fatal(err)
	}
	var bin bytes.Buffer
	if err := msa.WriteBinary(&bin, d); err != nil {
		b.Fatal(err)
	}
	parts := res.Partitions

	b.Run("phylip", func(b *testing.B) {
		for b.Loop() {
			a, err := msa.ParsePhylip(bytes.NewReader(phy.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := msa.Compress(a, parts); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(phy.Len()))
	})
	b.Run("binary", func(b *testing.B) {
		for b.Loop() {
			if _, err := msa.ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(bin.Len()))
	})
}

// ---------- ablation: flat vs hierarchical (hybrid) Allreduce ----------

// BenchmarkAblationHybridAllreduce compares the flat Allreduce against
// the §V hierarchical variant at a node-like grouping. In-process the
// wall-clock difference is modest; on a real cluster the inter-node
// participant count drops by the group factor (1536 → 32 on the paper's
// machine).
func BenchmarkAblationHybridAllreduce(b *testing.B) {
	const ranks = 48
	data := make([]float64, 1000)
	for i := range data {
		data[i] = float64(i)
	}
	b.Run("flat", func(b *testing.B) {
		w := mpi.NewWorld(ranks)
		for b.Loop() {
			w.Run(func(c *mpi.Comm) {
				c.Allreduce(data, mpi.OpSum, mpi.ClassLikelihoodEval)
			})
		}
	})
	b.Run("hierarchical-8", func(b *testing.B) {
		w := mpi.NewWorld(ranks)
		for b.Loop() {
			w.Run(func(c *mpi.Comm) {
				c.AllreduceHierarchical(data, mpi.OpSum, mpi.ClassLikelihoodEval, 8)
			})
		}
	})
}

// ---------- parsimony starting trees ----------

// BenchmarkParsimonyStart measures Parsimonator-style starting-tree
// construction (stepwise addition + SPR refinement).
func BenchmarkParsimonyStart(b *testing.B) {
	d := benchDataset(b, 24, 4, 250)
	b.ResetTimer()
	for b.Loop() {
		if _, _, err := parsimony.Build(d, 1, 7); err != nil {
			b.Fatal(err)
		}
	}
}
